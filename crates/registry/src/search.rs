//! The Hub's web search, as the crawler sees it (§III-A).
//!
//! Docker Hub has no API to list all repositories; the paper's crawler
//! searched for `"/"` (every non-official repo name contains one) and
//! paginated through HTML result pages. Two quirks are reproduced because
//! the crawler must handle them:
//!
//! * **duplicate hits** — Docker Hub's indexing returned the same
//!   repository on multiple pages (634,412 raw hits for 457,627 distinct
//!   repos, a duplication factor of ~1.386),
//! * **HTML transport** — results arrive as markup to parse, not JSON.

use dhub_model::RepoName;

/// One page of search results, rendered as simplified HTML.
#[derive(Clone, Debug)]
pub struct SearchPage {
    /// Zero-based page number.
    pub page: usize,
    /// Total number of pages for this query.
    pub total_pages: usize,
    /// The markup the crawler parses.
    pub html: String,
}

/// A snapshot search index over repository names.
pub struct SearchIndex {
    /// Result rows in index order — with duplicates, like the real Hub.
    rows: Vec<RepoName>,
    page_size: usize,
}

impl SearchIndex {
    /// Builds an index over `repos`. `duplication` ≥ 1.0 controls how many
    /// extra (duplicate) hits the index contains; the paper observed ~1.386.
    /// Duplicates are deterministic: every ⌈1/(dup-1)⌉-th repo appears twice.
    pub fn build(mut repos: Vec<RepoName>, duplication: f64, page_size: usize) -> SearchIndex {
        assert!(duplication >= 1.0);
        repos.sort(); // index order is name order, like a search index
        let mut rows = Vec::with_capacity((repos.len() as f64 * duplication) as usize);
        let dup_every = if duplication > 1.0 {
            (1.0 / (duplication - 1.0)).round().max(1.0) as usize
        } else {
            usize::MAX
        };
        for (i, r) in repos.iter().enumerate() {
            rows.push(r.clone());
            if dup_every != usize::MAX && i % dup_every == 0 {
                // Re-list the repo later in the index, as stale shards do.
                rows.push(r.clone());
            }
        }
        SearchIndex { rows, page_size: page_size.max(1) }
    }

    /// Total result rows (including duplicates).
    pub fn result_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.rows.len().div_ceil(self.page_size).max(1)
    }

    /// Serves one result page for the query. Only `"/"` (the list-everything
    /// trick) and the empty query are supported, matching how the study
    /// used the endpoint. Out-of-range pages yield an empty result list.
    pub fn search(&self, query: &str, page: usize) -> SearchPage {
        let matches: Vec<&RepoName> = if query == "/" {
            self.rows.iter().filter(|r| !r.is_official()).collect()
        } else if query.is_empty() {
            self.rows.iter().collect()
        } else {
            self.rows.iter().filter(|r| r.full().contains(query)).collect()
        };
        let total_pages = matches.len().div_ceil(self.page_size).max(1);
        let start = page * self.page_size;
        let slice: &[&RepoName] = if start >= matches.len() { &[] } else { &matches[start..(start + self.page_size).min(matches.len())] };

        let mut html = String::with_capacity(slice.len() * 80 + 256);
        html.push_str("<!DOCTYPE html><html><body><ul class=\"search-results\">\n");
        for r in slice {
            html.push_str(&format!(
                "  <li class=\"repo-row\"><a class=\"repo-link\" href=\"/r/{0}\">{0}</a></li>\n",
                r.full()
            ));
        }
        html.push_str(&format!(
            "</ul><div class=\"paginator\" data-page=\"{page}\" data-total=\"{total_pages}\"></div></body></html>\n"
        ));
        SearchPage { page, total_pages, html }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repos(n: usize) -> Vec<RepoName> {
        (0..n).map(|i| RepoName::user(&format!("user{}", i % 50), &format!("repo{i}"))).collect()
    }

    #[test]
    fn duplication_factor_applied() {
        let idx = SearchIndex::build(repos(1000), 1.386, 25);
        let ratio = idx.result_count() as f64 / 1000.0;
        assert!((1.3..1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn no_duplication_when_factor_one() {
        let idx = SearchIndex::build(repos(100), 1.0, 25);
        assert_eq!(idx.result_count(), 100);
    }

    #[test]
    fn slash_query_excludes_official() {
        let mut rs = repos(10);
        rs.push(RepoName::official("nginx"));
        let idx = SearchIndex::build(rs, 1.0, 100);
        let page = idx.search("/", 0);
        assert!(!page.html.contains(">nginx<"), "{}", page.html);
        assert!(page.html.contains("user0/repo0"));
    }

    #[test]
    fn pagination_covers_everything_once_per_row() {
        let idx = SearchIndex::build(repos(60), 1.0, 25);
        let mut seen = 0;
        let first = idx.search("/", 0);
        for p in 0..first.total_pages {
            let page = idx.search("/", p);
            seen += page.html.matches("repo-link").count();
        }
        assert_eq!(seen, 60);
    }

    #[test]
    fn out_of_range_page_is_empty() {
        let idx = SearchIndex::build(repos(10), 1.0, 25);
        let page = idx.search("/", 99);
        assert_eq!(page.html.matches("repo-link").count(), 0);
    }

    #[test]
    fn html_has_paginator_metadata() {
        let idx = SearchIndex::build(repos(100), 1.0, 10);
        let page = idx.search("/", 3);
        assert!(page.html.contains("data-page=\"3\""));
        assert!(page.html.contains("data-total=\"10\""));
    }

    #[test]
    fn substring_query() {
        let idx = SearchIndex::build(repos(100), 1.0, 200);
        let page = idx.search("repo7", 0);
        // repo7, repo70..repo79.
        assert_eq!(page.html.matches("repo-link").count(), 11);
    }
}
