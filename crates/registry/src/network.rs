//! Deterministic network cost model.
//!
//! The paper's discussion of storing small layers uncompressed (§IV-A)
//! trades transfer bytes against client-side decompression time. To
//! evaluate that trade-off (`bench_pull_policy`) we need a transport cost;
//! this model charges a per-request latency plus size/bandwidth, which is
//! how registry pull latency behaves to first order (cf. the Slacker and
//! Bolt measurements the paper cites).

use std::time::Duration;

/// A fixed-latency, fixed-bandwidth link.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Per-request round-trip latency.
    pub rtt: Duration,
    /// Sustained throughput in bytes/second.
    pub bandwidth_bps: u64,
}

impl NetworkModel {
    /// A datacenter-ish profile (0.5 ms RTT, 1 GB/s).
    pub fn datacenter() -> NetworkModel {
        NetworkModel { rtt: Duration::from_micros(500), bandwidth_bps: 1_000_000_000 }
    }

    /// A WAN profile (40 ms RTT, 50 MB/s) — pulling from Docker Hub over
    /// the public internet.
    pub fn wan() -> NetworkModel {
        NetworkModel { rtt: Duration::from_millis(40), bandwidth_bps: 50_000_000 }
    }

    /// Simulated time to transfer one blob of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let xfer = Duration::from_secs_f64(bytes as f64 / self.bandwidth_bps as f64);
        self.rtt + xfer
    }

    /// Simulated time for `n` sequential requests totalling `bytes`
    /// (parallel fetches divide this by the effective concurrency).
    pub fn transfer_time_many(&self, n: u64, bytes: u64) -> Duration {
        let xfer = Duration::from_secs_f64(bytes as f64 / self.bandwidth_bps as f64);
        self.rtt * (n as u32) + xfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_blobs() {
        let net = NetworkModel::wan();
        let t = net.transfer_time(1024);
        assert!(t >= Duration::from_millis(40));
        assert!(t < Duration::from_millis(41));
    }

    #[test]
    fn bandwidth_dominates_large_blobs() {
        let net = NetworkModel::wan();
        let t = net.transfer_time(500_000_000);
        // 500 MB at 50 MB/s = 10 s.
        assert!(t >= Duration::from_secs(10));
        assert!(t < Duration::from_secs(11));
    }

    #[test]
    fn many_requests_pay_rtt_each() {
        let net = NetworkModel::wan();
        let one = net.transfer_time_many(1, 0);
        let ten = net.transfer_time_many(10, 0);
        assert_eq!(ten, one * 10);
    }

    #[test]
    fn datacenter_faster_than_wan() {
        let bytes = 10_000_000;
        assert!(NetworkModel::datacenter().transfer_time(bytes) < NetworkModel::wan().transfer_time(bytes));
    }
}
