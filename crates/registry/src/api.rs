//! Registry-V2-shaped API surface.
//!
//! The operations the paper's downloader performs (§III-B): resolve
//! `repo:tag` to a manifest, then fetch each referenced layer blob. The two
//! failure modes the paper quantifies — 13 % of failed images required
//! authentication, 87 % had no `latest` tag — surface here as
//! [`ApiError::AuthRequired`] and [`ApiError::TagNotFound`].

use crate::blobstore::BlobStore;
use dhub_faults::{fault_key, FaultInjector, FaultKind, FaultOp};
use dhub_model::{Digest, Manifest, RepoName};
use dhub_sync::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors the registry API returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// No such repository.
    RepoNotFound,
    /// Repository exists but lacks the requested tag (87 % of the paper's
    /// download failures: no `latest`).
    TagNotFound,
    /// Repository requires a token the client does not hold (13 %).
    AuthRequired,
    /// Manifest or blob digest not present in the store.
    BlobNotFound,
    /// Stored manifest failed to parse (registry corruption, or an
    /// injected truncation/bit-flip of the manifest body).
    CorruptManifest,
    /// HTTP 429: the registry's rate limiter pushed back (retryable).
    RateLimited,
    /// HTTP 5xx: transient backend failure (retryable).
    Unavailable,
    /// The connection died before a response arrived (retryable).
    ConnectionReset,
}

impl ApiError {
    /// Whether a retry can plausibly succeed. Terminal errors (auth walls,
    /// missing tags/repos/blobs) are *classified*, exactly as the paper's
    /// downloader did; transient transport errors are retried.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ApiError::RateLimited
                | ApiError::Unavailable
                | ApiError::ConnectionReset
                | ApiError::CorruptManifest
        )
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ApiError::RepoNotFound => "repository not found",
            ApiError::TagNotFound => "tag not found",
            ApiError::AuthRequired => "authentication required",
            ApiError::BlobNotFound => "blob not found",
            ApiError::CorruptManifest => "corrupt manifest",
            ApiError::RateLimited => "rate limited (429)",
            ApiError::Unavailable => "service unavailable (5xx)",
            ApiError::ConnectionReset => "connection reset",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ApiError {}

/// Per-repository registry state.
struct RepoState {
    /// tag → manifest digest.
    tags: HashMap<String, Digest>,
    /// True for private-ish repos that reject anonymous pulls.
    requires_auth: bool,
    /// Cumulative pull counter (the popularity signal of Fig. 8).
    pulls: AtomicU64,
}

/// The registry: repositories + the shared blob store.
pub struct Registry {
    repos: RwLock<HashMap<RepoName, RepoState>>,
    blobs: BlobStore,
    /// Optional fault injector: when set, manifest and blob operations
    /// consult it and may fail transiently or return corrupted bytes —
    /// the flaky public registry the paper's pipeline actually faced.
    faults: RwLock<Option<Arc<FaultInjector>>>,
}

/// Fault kinds an in-process manifest resolution can express.
const MANIFEST_FAULTS: [FaultKind; 5] = [
    FaultKind::Drop,
    FaultKind::RateLimit,
    FaultKind::ServerError,
    FaultKind::SlowLink,
    FaultKind::Corrupt,
];

/// Fault kinds an in-process blob fetch can express (nonempty blob).
const BLOB_FAULTS: [FaultKind; 6] = [
    FaultKind::Drop,
    FaultKind::RateLimit,
    FaultKind::ServerError,
    FaultKind::SlowLink,
    FaultKind::Truncate,
    FaultKind::Corrupt,
];

/// Blob faults applicable when the blob is empty (nothing to damage).
const EMPTY_BLOB_FAULTS: [FaultKind; 4] =
    [FaultKind::Drop, FaultKind::RateLimit, FaultKind::ServerError, FaultKind::SlowLink];

/// Aggregate numbers for reports (the paper's Table-1-style summary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryStats {
    pub repositories: usize,
    pub unique_blobs: usize,
    pub stored_bytes: u64,
}

/// A resolved pull: the manifest plus its digest, with pull accounting done.
#[derive(Clone, Debug)]
pub struct PullSession {
    pub manifest_digest: Digest,
    pub manifest: Manifest,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry {
            repos: RwLock::new(HashMap::new()),
            blobs: BlobStore::new(),
            faults: RwLock::new(None),
        }
    }

    /// Attaches (or, with `None`, detaches) a fault injector. All
    /// subsequent manifest/blob operations consult it.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.faults.write() = injector;
    }

    /// The currently attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.faults.read().clone()
    }

    /// Consults the injector for one attempt at `(op, key)`; returns the
    /// error the operation should fail with, or `None` to proceed.
    /// `SlowLink` sleeps here and proceeds.
    fn injected_failure(
        &self,
        op: FaultOp,
        key: u64,
        allowed: &[FaultKind],
    ) -> Option<(FaultKind, ApiError)> {
        let injector = self.faults.read().clone()?;
        let kind = injector.decide(op, key, allowed)?;
        let err = match kind {
            FaultKind::Drop => ApiError::ConnectionReset,
            FaultKind::RateLimit => ApiError::RateLimited,
            FaultKind::ServerError => ApiError::Unavailable,
            FaultKind::SlowLink => {
                std::thread::sleep(injector.slow_link());
                return None;
            }
            // In-process, a damaged manifest body surfaces as a parse
            // failure; blob damage is handled by the caller (bytes).
            FaultKind::Truncate | FaultKind::Corrupt => ApiError::CorruptManifest,
            FaultKind::AuthFlap => ApiError::AuthRequired,
        };
        Some((kind, err))
    }

    /// Creates a repository. `requires_auth` marks repos that reject
    /// anonymous pulls.
    pub fn create_repo(&self, name: RepoName, requires_auth: bool) {
        self.repos.write().entry(name).or_insert_with(|| RepoState {
            tags: HashMap::new(),
            requires_auth,
            pulls: AtomicU64::new(0),
        });
    }

    /// Pushes an image: stores layer blobs (deduplicated), stores the
    /// manifest, points `tag` at it. Layers must be pushed with the
    /// manifest so the registry never holds dangling references.
    pub fn push_image(
        &self,
        repo: &RepoName,
        tag: &str,
        manifest: &Manifest,
        layer_blobs: Vec<Vec<u8>>,
    ) -> Result<Digest, ApiError> {
        for blob in layer_blobs {
            self.blobs.put(blob);
        }
        for l in &manifest.layers {
            if !self.blobs.contains(&l.digest) {
                return Err(ApiError::BlobNotFound);
            }
        }
        let manifest_digest = self.blobs.put(manifest.to_json().into_bytes());
        let mut repos = self.repos.write();
        let state = repos.get_mut(repo).ok_or(ApiError::RepoNotFound)?;
        state.tags.insert(tag.to_string(), manifest_digest);
        Ok(manifest_digest)
    }

    /// Resolves `repo:tag` to its manifest — the first half of `docker
    /// pull`. Counts one pull against the repository (successful
    /// resolutions only, so retried faulty attempts do not inflate the
    /// popularity signal).
    pub fn get_manifest(&self, repo: &RepoName, tag: &str, authed: bool) -> Result<PullSession, ApiError> {
        let key = fault_key(format!("{}:{tag}", repo.full()).as_bytes());
        if let Some((_kind, err)) = self.injected_failure(FaultOp::Manifest, key, &MANIFEST_FAULTS) {
            return Err(err);
        }
        let repos = self.repos.read();
        let state = repos.get(repo).ok_or(ApiError::RepoNotFound)?;
        if state.requires_auth && !authed {
            return Err(ApiError::AuthRequired);
        }
        let digest = *state.tags.get(tag).ok_or(ApiError::TagNotFound)?;
        state.pulls.fetch_add(1, Ordering::Relaxed);
        drop(repos);
        let raw = self.blobs.get(&digest).ok_or(ApiError::BlobNotFound)?;
        let text = std::str::from_utf8(&raw).map_err(|_| ApiError::CorruptManifest)?;
        let manifest = Manifest::from_json(text).ok_or(ApiError::CorruptManifest)?;
        Ok(PullSession { manifest_digest: digest, manifest })
    }

    /// Fetches a blob by digest — the second half of `docker pull`.
    ///
    /// With a fault injector attached this may fail transiently or return
    /// **damaged bytes** (truncated or bit-flipped); callers that care
    /// must verify the content digest, exactly as a real `docker pull`
    /// does.
    pub fn get_blob(&self, digest: &Digest) -> Result<Arc<Vec<u8>>, ApiError> {
        let blob = self.blobs.get(digest).ok_or(ApiError::BlobNotFound)?;
        let Some(injector) = self.faults.read().clone() else { return Ok(blob) };
        let key = fault_key(&digest.0);
        let allowed: &[FaultKind] =
            if blob.is_empty() { &EMPTY_BLOB_FAULTS } else { &BLOB_FAULTS };
        match injector.decide(FaultOp::Blob, key, allowed) {
            None => Ok(blob),
            Some(FaultKind::SlowLink) => {
                std::thread::sleep(injector.slow_link());
                Ok(blob)
            }
            Some(FaultKind::Drop) => Err(ApiError::ConnectionReset),
            Some(FaultKind::RateLimit) => Err(ApiError::RateLimited),
            Some(FaultKind::ServerError) => Err(ApiError::Unavailable),
            Some(FaultKind::Truncate) => {
                let mut v = blob.as_ref().clone();
                let keep = (key as usize) % v.len();
                v.truncate(keep);
                Ok(Arc::new(v))
            }
            Some(FaultKind::Corrupt) => {
                let mut v = blob.as_ref().clone();
                let bit = (key as usize) % (v.len() * 8);
                v[bit / 8] ^= 1 << (bit % 8);
                Ok(Arc::new(v))
            }
            Some(FaultKind::AuthFlap) => unreachable!("auth flap not in blob fault set"),
        }
    }

    /// Records `n` synthetic historical pulls (the generator uses this to
    /// implant the popularity distribution of Fig. 8).
    pub fn add_pulls(&self, repo: &RepoName, n: u64) {
        if let Some(state) = self.repos.read().get(repo) {
            state.pulls.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Cumulative pulls for a repository.
    pub fn pull_count(&self, repo: &RepoName) -> Option<u64> {
        self.repos.read().get(repo).map(|s| s.pulls.load(Ordering::Relaxed))
    }

    /// All repository names (unordered snapshot).
    pub fn repo_names(&self) -> Vec<RepoName> {
        self.repos.read().keys().cloned().collect()
    }

    /// Tags of one repository.
    pub fn tags(&self, repo: &RepoName) -> Option<Vec<String>> {
        self.repos.read().get(repo).map(|s| s.tags.keys().cloned().collect())
    }

    /// Whether the repository rejects anonymous pulls.
    pub fn requires_auth(&self, repo: &RepoName) -> Option<bool> {
        self.repos.read().get(repo).map(|s| s.requires_auth)
    }

    /// Deletes a tag. Blobs stay until [`Registry::gc`] runs (the
    /// two-phase delete real registries use).
    pub fn delete_tag(&self, repo: &RepoName, tag: &str) -> Result<(), ApiError> {
        let mut repos = self.repos.write();
        let state = repos.get_mut(repo).ok_or(ApiError::RepoNotFound)?;
        state.tags.remove(tag).map(|_| ()).ok_or(ApiError::TagNotFound)
    }

    /// Garbage-collects blobs unreachable from any tagged manifest:
    /// keeps every tagged manifest blob and every layer blob those
    /// manifests reference; drops the rest. Returns `(blobs, bytes)`
    /// reclaimed.
    pub fn gc(&self) -> (usize, u64) {
        use std::collections::HashSet;
        let mut live: HashSet<Digest> = HashSet::new();
        {
            let repos = self.repos.read();
            for state in repos.values() {
                for digest in state.tags.values() {
                    live.insert(*digest);
                    if let Some(raw) = self.blobs.get(digest) {
                        if let Ok(text) = std::str::from_utf8(&raw) {
                            if let Some(m) = Manifest::from_json(text) {
                                for l in &m.layers {
                                    live.insert(l.digest);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.blobs.retain(|d| live.contains(d))
    }

    /// Direct access to the blob store (analysis-side tooling).
    pub fn blob_store(&self) -> &BlobStore {
        &self.blobs
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            repositories: self.repos.read().len(),
            unique_blobs: self.blobs.len(),
            stored_bytes: self.blobs.total_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::LayerRef;

    fn push_simple(reg: &Registry, repo: &RepoName, tag: &str, payload: &[u8]) -> Digest {
        let blob = payload.to_vec();
        let layer = LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 };
        let manifest = Manifest::new(vec![layer]);
        reg.create_repo(repo.clone(), false);
        reg.push_image(repo, tag, &manifest, vec![blob]).unwrap()
    }

    #[test]
    fn push_then_pull() {
        let reg = Registry::new();
        let repo = RepoName::official("nginx");
        push_simple(&reg, &repo, "latest", b"nginx layer");
        let sess = reg.get_manifest(&repo, "latest", false).unwrap();
        assert_eq!(sess.manifest.layers.len(), 1);
        let blob = reg.get_blob(&sess.manifest.layers[0].digest).unwrap();
        assert_eq!(blob.as_slice(), b"nginx layer");
    }

    #[test]
    fn pull_counts_accumulate() {
        let reg = Registry::new();
        let repo = RepoName::user("alice", "app");
        push_simple(&reg, &repo, "latest", b"x");
        assert_eq!(reg.pull_count(&repo), Some(0));
        for _ in 0..5 {
            reg.get_manifest(&repo, "latest", false).unwrap();
        }
        reg.add_pulls(&repo, 100);
        assert_eq!(reg.pull_count(&repo), Some(105));
    }

    #[test]
    fn auth_required_repo_rejects_anonymous() {
        let reg = Registry::new();
        let repo = RepoName::user("corp", "private");
        reg.create_repo(repo.clone(), true);
        let blob = b"secret".to_vec();
        let manifest = Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: 6 }]);
        reg.push_image(&repo, "latest", &manifest, vec![blob]).unwrap();
        assert_eq!(reg.get_manifest(&repo, "latest", false).unwrap_err(), ApiError::AuthRequired);
        assert!(reg.get_manifest(&repo, "latest", true).is_ok());
    }

    #[test]
    fn missing_tag_and_repo() {
        let reg = Registry::new();
        let repo = RepoName::official("redis");
        push_simple(&reg, &repo, "3.2", b"redis");
        assert_eq!(reg.get_manifest(&repo, "latest", false).unwrap_err(), ApiError::TagNotFound);
        let ghost = RepoName::official("ghost");
        assert_eq!(reg.get_manifest(&ghost, "latest", false).unwrap_err(), ApiError::RepoNotFound);
    }

    #[test]
    fn failed_tag_lookup_does_not_count_a_pull() {
        let reg = Registry::new();
        let repo = RepoName::official("redis");
        push_simple(&reg, &repo, "3.2", b"redis");
        let _ = reg.get_manifest(&repo, "latest", false);
        assert_eq!(reg.pull_count(&repo), Some(0));
    }

    #[test]
    fn push_rejects_dangling_layer_refs() {
        let reg = Registry::new();
        let repo = RepoName::official("x");
        reg.create_repo(repo.clone(), false);
        let manifest = Manifest::new(vec![LayerRef { digest: Digest::of(b"never pushed"), size: 1 }]);
        assert_eq!(reg.push_image(&repo, "latest", &manifest, vec![]).unwrap_err(), ApiError::BlobNotFound);
    }

    #[test]
    fn layer_sharing_stores_blob_once() {
        let reg = Registry::new();
        let shared = b"ubuntu base layer".to_vec();
        for i in 0..10 {
            let repo = RepoName::user("user", &format!("app{i}"));
            reg.create_repo(repo.clone(), false);
            let manifest = Manifest::new(vec![LayerRef {
                digest: Digest::of(&shared),
                size: shared.len() as u64,
            }]);
            reg.push_image(&repo, "latest", &manifest, vec![shared.clone()]).unwrap();
        }
        let stats = reg.stats();
        assert_eq!(stats.repositories, 10);
        // 1 shared layer + 1 manifest blob (identical manifests dedup too).
        assert_eq!(stats.unique_blobs, 2);
    }

    #[test]
    fn delete_tag_then_gc_reclaims() {
        let reg = Registry::new();
        let shared = b"shared layer".to_vec();
        let a = RepoName::official("a");
        let bname = RepoName::official("b");
        for repo in [&a, &bname] {
            reg.create_repo(repo.clone(), false);
            let manifest = Manifest::new(vec![LayerRef {
                digest: Digest::of(&shared),
                size: shared.len() as u64,
            }]);
            reg.push_image(repo, "latest", &manifest, vec![shared.clone()]).unwrap();
        }
        // Give `a` a second, unshared image under another tag.
        let solo = b"only-in-a-v2".to_vec();
        let m2 = Manifest::new(vec![LayerRef { digest: Digest::of(&solo), size: solo.len() as u64 }]);
        reg.push_image(&a, "v2", &m2, vec![solo.clone()]).unwrap();

        // Nothing reclaimable while everything is tagged.
        assert_eq!(reg.gc(), (0, 0));

        // Untag v2: its manifest + unshared layer become garbage.
        reg.delete_tag(&a, "v2").unwrap();
        let (blobs, bytes) = reg.gc();
        assert_eq!(blobs, 2, "manifest + solo layer");
        assert!(bytes >= solo.len() as u64);
        // Shared content untouched; latest still pullable on both repos.
        assert!(reg.get_manifest(&a, "latest", false).is_ok());
        assert!(reg.get_manifest(&bname, "latest", false).is_ok());
        assert_eq!(reg.get_manifest(&a, "v2", false).unwrap_err(), ApiError::TagNotFound);
    }

    #[test]
    fn delete_tag_errors() {
        let reg = Registry::new();
        let repo = RepoName::official("x");
        assert_eq!(reg.delete_tag(&repo, "latest").unwrap_err(), ApiError::RepoNotFound);
        reg.create_repo(repo.clone(), false);
        assert_eq!(reg.delete_tag(&repo, "latest").unwrap_err(), ApiError::TagNotFound);
    }

    #[test]
    fn stats_track_bytes() {
        let reg = Registry::new();
        let repo = RepoName::official("a");
        push_simple(&reg, &repo, "latest", &[0u8; 100]);
        assert!(reg.stats().stored_bytes >= 100);
    }

    #[test]
    fn injected_faults_fire_and_detach_cleanly() {
        use dhub_faults::{FaultConfig, FaultInjector};
        let reg = Registry::new();
        let repo = RepoName::official("nginx");
        push_simple(&reg, &repo, "latest", b"payload-bytes");

        // Rate 1.0: every attempt faults with some transient error.
        let inj = Arc::new(FaultInjector::new(FaultConfig::uniform(7, 1.0)));
        reg.set_fault_injector(Some(inj.clone()));
        let mut failures = 0;
        for _ in 0..16 {
            match reg.get_manifest(&repo, "latest", false) {
                Err(e) => {
                    assert!(e.is_retryable(), "injected error must be retryable: {e:?}");
                    failures += 1;
                }
                Ok(_) => {} // SlowLink proceeds after the stall
            }
        }
        assert!(failures > 0, "rate-1.0 injector never failed a manifest fetch");
        assert!(inj.stats().total() >= 16, "every attempt decided");

        // Detached: clean behavior returns.
        reg.set_fault_injector(None);
        assert!(reg.get_manifest(&repo, "latest", false).is_ok());
    }

    #[test]
    fn corrupt_blob_fails_digest_check() {
        use dhub_faults::{FaultConfig, FaultInjector, FaultKind};
        let reg = Registry::new();
        let repo = RepoName::official("redis");
        let digest = {
            let blob = b"some layer content".to_vec();
            let layer = LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 };
            let manifest = Manifest::new(vec![layer]);
            reg.create_repo(repo.clone(), false);
            reg.push_image(&repo, "latest", &manifest, vec![blob]).unwrap();
            Digest::of(b"some layer content")
        };
        // Only corruption, always.
        let cfg = FaultConfig::uniform(3, 1.0)
            .with_weight(FaultKind::Drop, 0)
            .with_weight(FaultKind::RateLimit, 0)
            .with_weight(FaultKind::ServerError, 0)
            .with_weight(FaultKind::SlowLink, 0)
            .with_weight(FaultKind::Truncate, 0);
        reg.set_fault_injector(Some(Arc::new(FaultInjector::new(cfg))));
        let damaged = reg.get_blob(&digest).unwrap();
        assert_ne!(Digest::of(&damaged), digest, "bit flip must change the digest");
        assert_eq!(damaged.len(), b"some layer content".len(), "corrupt keeps length");
    }

    #[test]
    fn pull_counts_unaffected_by_faulted_attempts() {
        use dhub_faults::{FaultConfig, FaultInjector};
        let reg = Registry::new();
        let repo = RepoName::official("app");
        push_simple(&reg, &repo, "latest", b"x");
        // 50% fault rate: retry until one attempt succeeds.
        reg.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig::uniform(5, 0.5)))));
        let mut successes = 0;
        for _ in 0..64 {
            if reg.get_manifest(&repo, "latest", false).is_ok() {
                successes += 1;
            }
        }
        assert!(successes > 0);
        assert_eq!(reg.pull_count(&repo), Some(successes), "only successes count pulls");
    }
}
