//! Minimal HTTP/1.1 wire layer for the Registry V2 protocol.
//!
//! The paper's downloader "calls the Docker registry API directly" — i.e.
//! speaks HTTP to `registry-1.docker.io`. This module provides that
//! transport over real TCP sockets, from scratch: a request/response codec
//! ([`wire`]), a threaded registry server exposing the V2 endpoints
//! ([`server`]), and a client the downloader can drive ([`client`]).
//!
//! Supported surface (what `docker pull` and the study need):
//!
//! * `GET /v2/` — API version check (and the 401 + `WWW-Authenticate`
//!   token dance for auth-required repositories),
//! * `GET /v2/<name>/manifests/<reference>` — manifest by tag,
//! * `GET /v2/<name>/blobs/<digest>` — layer blobs,
//! * `GET /v2/<name>/tags/list` — tag listing (JSON).
//!
//! Bodies use `Content-Length` framing only (no chunked encoding) — the
//! registry always knows blob sizes up front, as the real one does.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{ClientError, RemoteRegistry, RetryStats};
pub use server::{BackendError, MirrorBackend, RegistryServer, DEFAULT_MAX_CONNS, DEMO_TOKEN};
pub use wire::{read_request, read_response, Request, Response, WireError};
