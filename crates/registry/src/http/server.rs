//! Threaded Registry V2 HTTP server.
//!
//! Serves an in-process [`Registry`] over real TCP with the endpoints and
//! auth dance the Docker client uses:
//!
//! * anonymous pulls work for public repositories;
//! * auth-required repositories answer `401` with a `WWW-Authenticate:
//!   Bearer realm=...` challenge; presenting `Authorization: Bearer
//!   <token>` (from the `/token` endpoint) grants access — the same flow
//!   behind the paper's "13 % of failed images required authentication".

use crate::api::{ApiError, Registry};
use crate::http::wire::{read_request, Request, Response, WireError};
use dhub_faults::{fault_key, FaultInjector, FaultKind, FaultOp};
use dhub_json::Json;
use dhub_model::{Digest, RepoName};
use dhub_obs::MetricsRegistry;
use dhub_sync::{Semaphore, SemaphorePermit};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running registry server; dropping it stops the accept loop.
pub struct RegistryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// The bearer token this simulation's `/token` endpoint issues. A real
/// registry mints signed JWTs; the study only needs the protocol shape.
pub const DEMO_TOKEN: &str = "dhub-demo-token";

/// Default cap on concurrent connection handler threads. Generous next to
/// the study's bounded worker crews; the point is that it exists at all,
/// so a connection flood sheds load instead of spawning without limit.
pub const DEFAULT_MAX_CONNS: usize = 256;

/// Why a mirror backend could not produce the requested object. Maps onto
/// the registry V2 status codes the front end answers with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// Origin demands credentials the request did not carry → 401 + challenge.
    AuthRequired,
    /// Origin says the repo/tag/blob does not exist → 404.
    NotFound,
    /// Origin is rate limiting → 429 (retryable for the client).
    RateLimited,
    /// Origin unreachable or erroring after retries/failover → 503.
    Unavailable,
}

/// What a mirror-mode [`RegistryServer`] serves from: something that can
/// produce manifests/blobs/tags on demand (`dhub-mirror`'s pull-through
/// cache implements this). Manifest bytes are the canonical `to_json`
/// encoding, so the digest the backend returns must match
/// `Digest::of(bytes)` — clients verify it against the
/// `docker-content-digest` header exactly as they do against an origin.
pub trait MirrorBackend: Send + Sync {
    /// Resolves a manifest by tag/digest reference.
    fn fetch_manifest(
        &self,
        repo: &RepoName,
        reference: &str,
        authed: bool,
    ) -> Result<(Digest, Vec<u8>), BackendError>;

    /// Fetches a blob by digest.
    fn fetch_blob(
        &self,
        repo: &RepoName,
        digest: &Digest,
        authed: bool,
    ) -> Result<Vec<u8>, BackendError>;

    /// Lists a repository's tags.
    fn tags(&self, repo: &RepoName, authed: bool) -> Result<Vec<String>, BackendError>;
}

/// What sits behind the HTTP front: a local in-process registry (optionally
/// fault-injected) or a pull-through mirror. Wire faults only apply to the
/// local flavor — a mirror's faults live at its origins.
enum Backend {
    Local { registry: Arc<Registry>, faults: Option<Arc<FaultInjector>> },
    Mirror(Arc<dyn MirrorBackend>),
}

impl RegistryServer {
    /// Binds to `127.0.0.1:0` (ephemeral port) and starts serving.
    pub fn start(registry: Arc<Registry>) -> std::io::Result<RegistryServer> {
        RegistryServer::start_with_faults(registry, None)
    }

    /// Like [`RegistryServer::start`], but every request consults the
    /// fault injector first: connections drop, 429/5xx fire, tokens flap,
    /// bodies truncate or flip bits — deterministically, per the plan.
    ///
    /// Metrics go to the process-global [`MetricsRegistry`]; use
    /// [`RegistryServer::start_full`] to scope them to a run.
    pub fn start_with_faults(
        registry: Arc<Registry>,
        faults: Option<Arc<FaultInjector>>,
    ) -> std::io::Result<RegistryServer> {
        RegistryServer::start_full(registry, faults, MetricsRegistry::global(), DEFAULT_MAX_CONNS)
    }

    /// The fully explicit constructor: fault injector, the metrics
    /// registry this server records into — and serves back, live, at
    /// `GET /metrics` in Prometheus text exposition — and the cap on
    /// concurrent connection handlers. Handing in the same registry a
    /// study run records into makes the endpoint a window onto the whole
    /// pipeline, not just the HTTP front.
    pub fn start_full(
        registry: Arc<Registry>,
        faults: Option<Arc<FaultInjector>>,
        metrics: Arc<MetricsRegistry>,
        max_conns: usize,
    ) -> std::io::Result<RegistryServer> {
        RegistryServer::start_backend(Backend::Local { registry, faults }, metrics, max_conns)
    }

    /// Starts a mirror-mode server: every manifest/blob/tags request is
    /// answered by `backend` (a pull-through cache over origin registries)
    /// instead of a local [`Registry`]. `/token`, `/v2/` and `/metrics`
    /// behave exactly as in local mode.
    pub fn start_mirror(
        backend: Arc<dyn MirrorBackend>,
        metrics: Arc<MetricsRegistry>,
        max_conns: usize,
    ) -> std::io::Result<RegistryServer> {
        RegistryServer::start_backend(Backend::Mirror(backend), metrics, max_conns)
    }

    fn start_backend(
        backend: Backend,
        metrics: Arc<MetricsRegistry>,
        max_conns: usize,
    ) -> std::io::Result<RegistryServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        listener.set_nonblocking(true)?;
        let backend = Arc::new(backend);
        // Admission control: one permit per live connection handler. When
        // the cap is reached the acceptor sheds the connection with an
        // immediate 503 instead of spawning yet another thread.
        let conn_permits = Semaphore::new(max_conns);
        let accept_thread = std::thread::Builder::new()
            .name("dhub-registry-http".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            let Some(permit) = conn_permits.try_acquire() else {
                                metrics.counter("dhub_http_rejected_overload_total").inc();
                                let resp = json_error(503, "OVERLOADED")
                                    .with_header("connection", "close");
                                let _ = resp.write_to(&mut stream);
                                continue;
                            };
                            let be = backend.clone();
                            let met = metrics.clone();
                            // Thread-per-connection, bounded by the permit
                            // the handler carries until it returns.
                            let _ = std::thread::Builder::new()
                                .name("dhub-registry-conn".into())
                                .spawn(move || handle_connection(stream, be, met, permit));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(RegistryServer { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RegistryServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// How one routed request leaves the connection.
enum Routed {
    /// Normal response.
    Respond(Response),
    /// Injected truncation: write the response's headers with the full
    /// content-length but only `keep` body bytes, then close.
    RespondTruncated(Response, usize),
    /// Injected connection drop: close without responding.
    Drop,
}

fn handle_connection(
    mut stream: TcpStream,
    backend: Arc<Backend>,
    metrics: Arc<MetricsRegistry>,
    _permit: SemaphorePermit,
) {
    // Keep-alive: serve requests until the peer closes or errs.
    loop {
        let request = match read_request(&mut stream) {
            Ok(r) => r,
            Err(WireError::UnexpectedEof) => return,
            Err(_) => {
                let _ = Response::new(400, b"bad request".to_vec()).write_to(&mut stream);
                return;
            }
        };
        let response = match route_faulty(&request, &backend, &metrics) {
            Routed::Respond(r) => r,
            Routed::RespondTruncated(r, keep) => {
                let _ = r.write_truncated_to(&mut stream, keep);
                return; // mid-transfer cut: connection dies with the body
            }
            Routed::Drop => return,
        };
        if response.write_to(&mut stream).is_err() {
            return;
        }
        if request.header("connection").map(|c| c.eq_ignore_ascii_case("close")).unwrap_or(false) {
            let _ = stream.flush();
            return;
        }
    }
}

fn authed(req: &Request) -> bool {
    req.header("authorization")
        .map(|v| v == format!("Bearer {DEMO_TOKEN}"))
        .unwrap_or(false)
}

fn json_error(status: u16, code: &str) -> Response {
    let mut body = Json::obj();
    body.set("errors", Json::Arr(vec![{
        let mut e = Json::obj();
        e.set("code", code);
        e
    }]));
    Response::new(status, body.to_string().into_bytes())
        .with_header("content-type", "application/json")
}

fn route(req: &Request, backend: &Backend, metrics: &MetricsRegistry) -> Response {
    if req.method != "GET" {
        return json_error(405, "UNSUPPORTED");
    }
    let path = req.target.split('?').next().unwrap_or("");

    // Live metrics: the registry handed to this server at start, rendered
    // in Prometheus text exposition — scrapeable mid-study.
    if path == "/metrics" {
        return Response::new(200, dhub_obs::render_prometheus(metrics).into_bytes())
            .with_header("content-type", "text/plain; version=0.0.4");
    }

    // Token endpoint (the Bearer realm the 401 challenge points at). A
    // mirror issues the same demo token its origins accept, so one auth
    // dance works against either tier.
    if path == "/token" {
        metrics.counter("dhub_http_token_grants_total").inc();
        let mut body = Json::obj();
        body.set("token", DEMO_TOKEN);
        return Response::new(200, body.to_string().into_bytes())
            .with_header("content-type", "application/json");
    }

    // /v2/ version check.
    if path == "/v2/" || path == "/v2" {
        return Response::new(200, b"{}".to_vec())
            .with_header("docker-distribution-api-version", "registry/2.0");
    }

    let Some(rest) = path.strip_prefix("/v2/") else {
        return json_error(404, "NOT_FOUND");
    };

    // <name>/manifests/<ref> | <name>/blobs/<digest> | <name>/tags/list —
    // the name itself may contain one '/'.
    if let Some((name, reference)) = rest.rsplit_once("/manifests/") {
        return match backend {
            Backend::Local { registry, .. } => {
                manifest_endpoint(registry, name, reference, authed(req))
            }
            Backend::Mirror(be) => mirror_manifest_endpoint(be.as_ref(), name, reference, authed(req)),
        };
    }
    if let Some((name, digest)) = rest.rsplit_once("/blobs/") {
        return match backend {
            Backend::Local { registry, .. } => blob_endpoint(registry, name, digest, authed(req)),
            Backend::Mirror(be) => mirror_blob_endpoint(be.as_ref(), name, digest, authed(req)),
        };
    }
    if let Some(name) = rest.strip_suffix("/tags/list") {
        let name = name.trim_end_matches('/');
        return match backend {
            Backend::Local { registry, .. } => tags_endpoint(registry, name, authed(req)),
            Backend::Mirror(be) => mirror_tags_endpoint(be.as_ref(), name, authed(req)),
        };
    }
    json_error(404, "NOT_FOUND")
}

/// Which fault operation an HTTP path belongs to, or `None` for paths the
/// fault plan never touches (version check, unknown routes).
fn http_fault_op(path: &str) -> Option<FaultOp> {
    if path == "/token" {
        return Some(FaultOp::Token);
    }
    if path == "/metrics" {
        // A scraper shares the wire with the crawl, so it shares its
        // transport faults too (never body damage — that allowed set is
        // reserved for manifests/blobs below).
        return Some(FaultOp::Search);
    }
    let rest = path.strip_prefix("/v2/")?;
    if rest.contains("/manifests/") {
        Some(FaultOp::Manifest)
    } else if rest.contains("/blobs/") {
        Some(FaultOp::Blob)
    } else if rest.ends_with("/tags/list") {
        Some(FaultOp::Search)
    } else {
        None
    }
}

/// Routes one request through the fault plan: transport faults (drop,
/// 429/503, auth flap, slow link) fire before the registry is consulted;
/// body damage (truncate, bit flip) is applied to successful responses.
/// Tallies `dhub_http_*` counters along the way.
fn route_faulty(req: &Request, backend: &Backend, metrics: &MetricsRegistry) -> Routed {
    metrics.counter("dhub_http_requests_total").inc();
    let routed = route_faulty_inner(req, backend, metrics);
    let status = match &routed {
        Routed::Respond(r) | Routed::RespondTruncated(r, _) => r.status,
        Routed::Drop => 0,
    };
    match status {
        200..=299 => metrics.counter("dhub_http_status_2xx_total").inc(),
        400..=499 => metrics.counter("dhub_http_status_4xx_total").inc(),
        500..=599 => metrics.counter("dhub_http_status_5xx_total").inc(),
        _ => {}
    }
    routed
}

fn route_faulty_inner(req: &Request, backend: &Backend, metrics: &MetricsRegistry) -> Routed {
    let route = |req, backend| route(req, backend, metrics);
    // Wire faults are a local-registry affair; a mirror front end serves
    // clean, and its origins carry their own injectors.
    let faults = match backend {
        Backend::Local { faults, .. } => faults.as_deref(),
        Backend::Mirror(_) => None,
    };
    let Some(inj) = faults else { return Routed::Respond(route(req, backend)) };
    let path = req.target.split('?').next().unwrap_or("");
    let Some(op) = http_fault_op(path) else { return Routed::Respond(route(req, backend)) };

    let mut allowed = vec![
        FaultKind::Drop,
        FaultKind::RateLimit,
        FaultKind::ServerError,
        FaultKind::SlowLink,
    ];
    if req.header("authorization").is_some() {
        // Token expiry mid-crawl: only a client that presented credentials
        // can watch them flap. Anonymous pulls (the study's default) are
        // never told to re-authenticate by this fault.
        allowed.push(FaultKind::AuthFlap);
    }
    if matches!(op, FaultOp::Manifest | FaultOp::Blob) {
        allowed.push(FaultKind::Truncate);
        allowed.push(FaultKind::Corrupt);
    }

    let key = fault_key(path.as_bytes());
    let decision = inj.decide(op, key, &allowed);
    if decision.is_some() {
        metrics.counter("dhub_http_wire_faults_total").inc();
    }
    match decision {
        None => Routed::Respond(route(req, backend)),
        Some(FaultKind::Drop) => Routed::Drop,
        Some(FaultKind::RateLimit) => Routed::Respond(json_error(429, "TOOMANYREQUESTS")),
        Some(FaultKind::ServerError) => Routed::Respond(json_error(503, "UNAVAILABLE")),
        Some(FaultKind::AuthFlap) => Routed::Respond(challenge(json_error(401, "UNAUTHORIZED"))),
        Some(FaultKind::SlowLink) => {
            std::thread::sleep(inj.slow_link());
            Routed::Respond(route(req, backend))
        }
        Some(FaultKind::Truncate) => {
            let resp = route(req, backend);
            if resp.status == 200 && !resp.body.is_empty() {
                let keep = (key as usize) % resp.body.len();
                Routed::RespondTruncated(resp, keep)
            } else {
                Routed::Respond(resp)
            }
        }
        Some(FaultKind::Corrupt) => {
            let mut resp = route(req, backend);
            if resp.status == 200 && !resp.body.is_empty() {
                let bit = (key as usize) % (resp.body.len() * 8);
                resp.body[bit / 8] ^= 1 << (bit % 8);
            }
            Routed::Respond(resp)
        }
    }
}

fn challenge(resp: Response) -> Response {
    resp.with_header("www-authenticate", "Bearer realm=\"/token\",service=\"dhub-registry\"")
}

fn repo_of(name: &str) -> Option<RepoName> {
    RepoName::parse(name)
}

fn manifest_endpoint(registry: &Registry, name: &str, reference: &str, authed: bool) -> Response {
    let Some(repo) = repo_of(name) else { return json_error(404, "NAME_INVALID") };
    match registry.get_manifest(&repo, reference, authed) {
        Ok(sess) => {
            let body = sess.manifest.to_json().into_bytes();
            Response::new(200, body)
                .with_header("content-type", "application/vnd.docker.distribution.manifest.v2+json")
                .with_header("docker-content-digest", &sess.manifest_digest.to_docker_string())
        }
        Err(ApiError::AuthRequired) => challenge(json_error(401, "UNAUTHORIZED")),
        Err(ApiError::TagNotFound) => json_error(404, "MANIFEST_UNKNOWN"),
        Err(ApiError::RepoNotFound) => json_error(404, "NAME_UNKNOWN"),
        Err(_) => json_error(404, "UNKNOWN"),
    }
}

fn blob_endpoint(registry: &Registry, name: &str, digest: &str, authed: bool) -> Response {
    let Some(repo) = repo_of(name) else { return json_error(404, "NAME_INVALID") };
    // Blob access obeys the repository's auth policy, like the real API.
    if registry.requires_auth(&repo).unwrap_or(false) && !authed {
        return challenge(json_error(401, "UNAUTHORIZED"));
    }
    let Some(d) = Digest::parse(digest) else { return json_error(404, "DIGEST_INVALID") };
    match registry.get_blob(&d) {
        Ok(blob) => Response::new(200, blob.as_ref().clone())
            .with_header("content-type", "application/octet-stream")
            .with_header("docker-content-digest", digest),
        Err(_) => json_error(404, "BLOB_UNKNOWN"),
    }
}

fn tags_endpoint(registry: &Registry, name: &str, authed: bool) -> Response {
    let Some(repo) = repo_of(name) else { return json_error(404, "NAME_INVALID") };
    if registry.requires_auth(&repo).unwrap_or(false) && !authed {
        return challenge(json_error(401, "UNAUTHORIZED"));
    }
    match registry.tags(&repo) {
        Some(mut tags) => {
            tags.sort();
            let mut body = Json::obj();
            body.set("name", name);
            body.set("tags", tags);
            Response::new(200, body.to_string().into_bytes())
                .with_header("content-type", "application/json")
        }
        None => json_error(404, "NAME_UNKNOWN"),
    }
}

/// Maps a [`BackendError`] to the response an origin would have sent, so a
/// client cannot tell (status-wise) whether it talked to origin or mirror.
fn backend_error_response(err: BackendError, not_found_code: &str) -> Response {
    match err {
        BackendError::AuthRequired => challenge(json_error(401, "UNAUTHORIZED")),
        BackendError::NotFound => json_error(404, not_found_code),
        BackendError::RateLimited => json_error(429, "TOOMANYREQUESTS"),
        BackendError::Unavailable => json_error(503, "UNAVAILABLE"),
    }
}

fn mirror_manifest_endpoint(
    be: &dyn MirrorBackend,
    name: &str,
    reference: &str,
    authed: bool,
) -> Response {
    let Some(repo) = repo_of(name) else { return json_error(404, "NAME_INVALID") };
    match be.fetch_manifest(&repo, reference, authed) {
        Ok((digest, body)) => Response::new(200, body)
            .with_header("content-type", "application/vnd.docker.distribution.manifest.v2+json")
            .with_header("docker-content-digest", &digest.to_docker_string()),
        Err(e) => backend_error_response(e, "MANIFEST_UNKNOWN"),
    }
}

fn mirror_blob_endpoint(be: &dyn MirrorBackend, name: &str, digest: &str, authed: bool) -> Response {
    let Some(repo) = repo_of(name) else { return json_error(404, "NAME_INVALID") };
    let Some(d) = Digest::parse(digest) else { return json_error(404, "DIGEST_INVALID") };
    match be.fetch_blob(&repo, &d, authed) {
        Ok(body) => Response::new(200, body)
            .with_header("content-type", "application/octet-stream")
            .with_header("docker-content-digest", digest),
        Err(e) => backend_error_response(e, "BLOB_UNKNOWN"),
    }
}

fn mirror_tags_endpoint(be: &dyn MirrorBackend, name: &str, authed: bool) -> Response {
    let Some(repo) = repo_of(name) else { return json_error(404, "NAME_INVALID") };
    match be.tags(&repo, authed) {
        Ok(mut tags) => {
            tags.sort();
            let mut body = Json::obj();
            body.set("name", name);
            body.set("tags", tags);
            Response::new(200, body.to_string().into_bytes())
                .with_header("content-type", "application/json")
        }
        Err(e) => backend_error_response(e, "NAME_UNKNOWN"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::{LayerRef, Manifest};

    fn test_registry() -> Arc<Registry> {
        let reg = Registry::new();
        let blob = b"layer-bytes".to_vec();
        let repo = RepoName::official("nginx");
        reg.create_repo(repo.clone(), false);
        let manifest =
            Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
        reg.push_image(&repo, "latest", &manifest, vec![blob]).unwrap();

        let private = RepoName::user("corp", "secret");
        reg.create_repo(private.clone(), true);
        let pblob = b"private-bytes".to_vec();
        let pm = Manifest::new(vec![LayerRef { digest: Digest::of(&pblob), size: pblob.len() as u64 }]);
        reg.push_image(&private, "latest", &pm, vec![pblob]).unwrap();
        Arc::new(reg)
    }

    fn roundtrip(req: &Request, reg: &Arc<Registry>) -> Response {
        let be = Backend::Local { registry: reg.clone(), faults: None };
        route(req, &be, &MetricsRegistry::new())
    }

    fn faulty(req: &Request, reg: &Arc<Registry>, inj: FaultInjector) -> Routed {
        let be = Backend::Local { registry: reg.clone(), faults: Some(Arc::new(inj)) };
        route_faulty(req, &be, &MetricsRegistry::new())
    }

    #[test]
    fn version_check() {
        let reg = test_registry();
        let resp = roundtrip(&Request::get("/v2/"), &reg);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("docker-distribution-api-version").unwrap(), "registry/2.0");
    }

    #[test]
    fn manifest_fetch_and_digest_header() {
        let reg = test_registry();
        let resp = roundtrip(&Request::get("/v2/nginx/manifests/latest"), &reg);
        assert_eq!(resp.status, 200);
        let m = Manifest::from_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(m.layers.len(), 1);
        let d = Digest::parse(resp.header("docker-content-digest").unwrap()).unwrap();
        assert_eq!(d, m.digest());
    }

    #[test]
    fn blob_fetch() {
        let reg = test_registry();
        let m = roundtrip(&Request::get("/v2/nginx/manifests/latest"), &reg);
        let manifest = Manifest::from_json(std::str::from_utf8(&m.body).unwrap()).unwrap();
        let digest = manifest.layers[0].digest.to_docker_string();
        let resp = roundtrip(&Request::get(&format!("/v2/nginx/blobs/{digest}")), &reg);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"layer-bytes");
    }

    #[test]
    fn auth_dance() {
        let reg = test_registry();
        // Anonymous → 401 with a challenge.
        let resp = roundtrip(&Request::get("/v2/corp/secret/manifests/latest"), &reg);
        assert_eq!(resp.status, 401);
        assert!(resp.header("www-authenticate").unwrap().contains("Bearer realm"));
        // Token endpoint issues the bearer token.
        let tok = roundtrip(&Request::get("/token"), &reg);
        assert_eq!(tok.status, 200);
        assert!(std::str::from_utf8(&tok.body).unwrap().contains(DEMO_TOKEN));
        // Authorized fetch succeeds.
        let resp = roundtrip(
            &Request::get("/v2/corp/secret/manifests/latest")
                .with_header("authorization", &format!("Bearer {DEMO_TOKEN}")),
            &reg,
        );
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn wrong_token_rejected() {
        let reg = test_registry();
        let resp = roundtrip(
            &Request::get("/v2/corp/secret/manifests/latest")
                .with_header("authorization", "Bearer wrong"),
            &reg,
        );
        assert_eq!(resp.status, 401);
    }

    #[test]
    fn unknown_routes_404() {
        let reg = test_registry();
        assert_eq!(roundtrip(&Request::get("/v2/ghost/manifests/latest"), &reg).status, 404);
        assert_eq!(roundtrip(&Request::get("/v2/nginx/manifests/v9"), &reg).status, 404);
        assert_eq!(roundtrip(&Request::get("/elsewhere"), &reg).status, 404);
        assert_eq!(
            roundtrip(&Request::get("/v2/nginx/blobs/sha256:zz"), &reg).status,
            404
        );
    }

    #[test]
    fn non_get_rejected() {
        let reg = test_registry();
        let mut req = Request::get("/v2/");
        req.method = "DELETE".into();
        assert_eq!(roundtrip(&req, &reg).status, 405);
    }

    #[test]
    fn tags_list() {
        let reg = test_registry();
        let resp = roundtrip(&Request::get("/v2/nginx/tags/list"), &reg);
        assert_eq!(resp.status, 200);
        let text = std::str::from_utf8(&resp.body).unwrap();
        assert!(text.contains("latest"), "{text}");
    }

    use dhub_faults::FaultConfig;

    /// An injector that always fires `kind` (and nothing else).
    fn only(kind: FaultKind) -> FaultInjector {
        FaultInjector::new(FaultConfig::only(7, 1.0, kind))
    }

    #[test]
    fn injected_rate_limit_then_drop() {
        let reg = test_registry();
        let req = Request::get("/v2/nginx/manifests/latest");
        match faulty(&req, &reg, only(FaultKind::RateLimit)) {
            Routed::Respond(r) => assert_eq!(r.status, 429),
            _ => panic!("expected a 429 response"),
        }
        assert!(matches!(faulty(&req, &reg, only(FaultKind::Drop)), Routed::Drop));
    }

    #[test]
    fn injected_truncation_keeps_prefix_only() {
        let reg = test_registry();
        let req = Request::get("/v2/nginx/manifests/latest");
        match faulty(&req, &reg, only(FaultKind::Truncate)) {
            Routed::RespondTruncated(r, keep) => {
                assert_eq!(r.status, 200);
                assert!(keep < r.body.len());
            }
            _ => panic!("expected a truncated response"),
        }
    }

    #[test]
    fn injected_corruption_flips_one_bit() {
        let reg = test_registry();
        let req = Request::get("/v2/nginx/manifests/latest");
        let clean = roundtrip(&req, &reg);
        match faulty(&req, &reg, only(FaultKind::Corrupt)) {
            Routed::Respond(r) => {
                assert_eq!(r.status, 200);
                assert_ne!(r.body, clean.body);
                let flipped: u32 = r
                    .body
                    .iter()
                    .zip(&clean.body)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(flipped, 1);
            }
            _ => panic!("expected a corrupted response"),
        }
    }

    #[test]
    fn auth_flap_spares_anonymous_requests() {
        let reg = test_registry();
        // Anonymous request: AuthFlap is not in the allowed set, every other
        // weight is zero, so no fault fires at all.
        let req = Request::get("/v2/nginx/manifests/latest");
        match faulty(&req, &reg, only(FaultKind::AuthFlap)) {
            Routed::Respond(r) => assert_eq!(r.status, 200),
            _ => panic!("anonymous request must not fault"),
        }
        // The same request with credentials gets a re-auth challenge.
        let req = req.with_header("authorization", &format!("Bearer {DEMO_TOKEN}"));
        match faulty(&req, &reg, only(FaultKind::AuthFlap)) {
            Routed::Respond(r) => {
                assert_eq!(r.status, 401);
                assert!(r.header("www-authenticate").unwrap().contains("Bearer"));
            }
            _ => panic!("credentialed request should see the flap"),
        }
    }

    #[test]
    fn overload_sheds_with_503_and_counter() {
        use std::io::Read as _;
        let reg = test_registry();
        let metrics = Arc::new(MetricsRegistry::new());
        let server = RegistryServer::start_full(reg, None, metrics.clone(), 1).unwrap();

        // Take the only permit: this handler parks in read_request because
        // we never send a byte on the connection.
        let _held = TcpStream::connect(server.addr()).unwrap();

        // The acceptor may briefly race the permit hand-off, so retry:
        // once the held connection owns the permit, every extra connection
        // must be shed with an immediate 503.
        let mut saw_503 = false;
        for _ in 0..200 {
            let mut extra = TcpStream::connect(server.addr()).unwrap();
            let _ = extra.write_all(b"GET /v2/ HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n");
            let mut raw = String::new();
            let _ = extra.read_to_string(&mut raw);
            if raw.starts_with("HTTP/1.1 503") {
                saw_503 = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(saw_503, "no extra connection was shed");
        assert!(
            metrics.counter_value("dhub_http_rejected_overload_total") > 0,
            "overload counter never moved"
        );
        server.shutdown();
    }

    /// A canned backend standing in for `dhub-mirror` (which lives
    /// downstream of this crate): proves the mirror server mode speaks the
    /// same protocol shape as the local one.
    struct CannedBackend {
        manifest: Manifest,
        blob: Vec<u8>,
    }

    impl MirrorBackend for CannedBackend {
        fn fetch_manifest(
            &self,
            repo: &RepoName,
            reference: &str,
            _authed: bool,
        ) -> Result<(Digest, Vec<u8>), BackendError> {
            if repo.full() != "nginx" || reference != "latest" {
                return Err(BackendError::NotFound);
            }
            let body = self.manifest.to_json().into_bytes();
            Ok((Digest::of(&body), body))
        }

        fn fetch_blob(
            &self,
            _repo: &RepoName,
            digest: &Digest,
            _authed: bool,
        ) -> Result<Vec<u8>, BackendError> {
            if *digest == Digest::of(&self.blob) {
                Ok(self.blob.clone())
            } else {
                Err(BackendError::NotFound)
            }
        }

        fn tags(&self, _repo: &RepoName, _authed: bool) -> Result<Vec<String>, BackendError> {
            Ok(vec!["latest".into()])
        }
    }

    #[test]
    fn mirror_mode_serves_backend_objects() {
        let blob = b"mirror-layer".to_vec();
        let manifest =
            Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
        let be = Arc::new(CannedBackend { manifest: manifest.clone(), blob: blob.clone() });
        let backend = Backend::Mirror(be);
        let metrics = MetricsRegistry::new();

        let resp = route(&Request::get("/v2/nginx/manifests/latest"), &backend, &metrics);
        assert_eq!(resp.status, 200);
        let m = Manifest::from_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(m.layers.len(), 1);
        let d = Digest::parse(resp.header("docker-content-digest").unwrap()).unwrap();
        assert_eq!(d, Digest::of(&resp.body));

        let blob_path = format!("/v2/nginx/blobs/{}", Digest::of(&blob).to_docker_string());
        let resp = route(&Request::get(&blob_path), &backend, &metrics);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, blob);

        let resp = route(&Request::get("/v2/nginx/manifests/v9"), &backend, &metrics);
        assert_eq!(resp.status, 404);

        let resp = route(&Request::get("/v2/nginx/tags/list"), &backend, &metrics);
        assert_eq!(resp.status, 200);
        assert!(std::str::from_utf8(&resp.body).unwrap().contains("latest"));
    }
}
