//! Threaded Registry V2 HTTP server.
//!
//! Serves an in-process [`Registry`] over real TCP with the endpoints and
//! auth dance the Docker client uses:
//!
//! * anonymous pulls work for public repositories;
//! * auth-required repositories answer `401` with a `WWW-Authenticate:
//!   Bearer realm=...` challenge; presenting `Authorization: Bearer
//!   <token>` (from the `/token` endpoint) grants access — the same flow
//!   behind the paper's "13 % of failed images required authentication".

use crate::api::{ApiError, Registry};
use crate::http::wire::{read_request, Request, Response, WireError};
use dhub_faults::{fault_key, FaultInjector, FaultKind, FaultOp};
use dhub_json::Json;
use dhub_model::{Digest, RepoName};
use dhub_obs::MetricsRegistry;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running registry server; dropping it stops the accept loop.
pub struct RegistryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// The bearer token this simulation's `/token` endpoint issues. A real
/// registry mints signed JWTs; the study only needs the protocol shape.
pub const DEMO_TOKEN: &str = "dhub-demo-token";

impl RegistryServer {
    /// Binds to `127.0.0.1:0` (ephemeral port) and starts serving.
    pub fn start(registry: Arc<Registry>) -> std::io::Result<RegistryServer> {
        RegistryServer::start_with_faults(registry, None)
    }

    /// Like [`RegistryServer::start`], but every request consults the
    /// fault injector first: connections drop, 429/5xx fire, tokens flap,
    /// bodies truncate or flip bits — deterministically, per the plan.
    ///
    /// Metrics go to the process-global [`MetricsRegistry`]; use
    /// [`RegistryServer::start_full`] to scope them to a run.
    pub fn start_with_faults(
        registry: Arc<Registry>,
        faults: Option<Arc<FaultInjector>>,
    ) -> std::io::Result<RegistryServer> {
        RegistryServer::start_full(registry, faults, MetricsRegistry::global())
    }

    /// The fully explicit constructor: fault injector and the metrics
    /// registry this server records into — and serves back, live, at
    /// `GET /metrics` in Prometheus text exposition. Handing in the same
    /// registry a study run records into makes the endpoint a window onto
    /// the whole pipeline, not just the HTTP front.
    pub fn start_full(
        registry: Arc<Registry>,
        faults: Option<Arc<FaultInjector>>,
        metrics: Arc<MetricsRegistry>,
    ) -> std::io::Result<RegistryServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        listener.set_nonblocking(true)?;
        let accept_thread = std::thread::Builder::new()
            .name("dhub-registry-http".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let reg = registry.clone();
                            let inj = faults.clone();
                            let met = metrics.clone();
                            // Thread-per-connection: plenty for the study's
                            // bounded worker crews.
                            let _ = std::thread::Builder::new()
                                .name("dhub-registry-conn".into())
                                .spawn(move || handle_connection(stream, reg, inj, met));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(RegistryServer { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RegistryServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// How one routed request leaves the connection.
enum Routed {
    /// Normal response.
    Respond(Response),
    /// Injected truncation: write the response's headers with the full
    /// content-length but only `keep` body bytes, then close.
    RespondTruncated(Response, usize),
    /// Injected connection drop: close without responding.
    Drop,
}

fn handle_connection(
    mut stream: TcpStream,
    registry: Arc<Registry>,
    faults: Option<Arc<FaultInjector>>,
    metrics: Arc<MetricsRegistry>,
) {
    // Keep-alive: serve requests until the peer closes or errs.
    loop {
        let request = match read_request(&mut stream) {
            Ok(r) => r,
            Err(WireError::UnexpectedEof) => return,
            Err(_) => {
                let _ = Response::new(400, b"bad request".to_vec()).write_to(&mut stream);
                return;
            }
        };
        let response = match route_faulty(&request, &registry, faults.as_deref(), &metrics) {
            Routed::Respond(r) => r,
            Routed::RespondTruncated(r, keep) => {
                let _ = r.write_truncated_to(&mut stream, keep);
                return; // mid-transfer cut: connection dies with the body
            }
            Routed::Drop => return,
        };
        if response.write_to(&mut stream).is_err() {
            return;
        }
        if request.header("connection").map(|c| c.eq_ignore_ascii_case("close")).unwrap_or(false) {
            let _ = stream.flush();
            return;
        }
    }
}

fn authed(req: &Request) -> bool {
    req.header("authorization")
        .map(|v| v == format!("Bearer {DEMO_TOKEN}"))
        .unwrap_or(false)
}

fn json_error(status: u16, code: &str) -> Response {
    let mut body = Json::obj();
    body.set("errors", Json::Arr(vec![{
        let mut e = Json::obj();
        e.set("code", code);
        e
    }]));
    Response::new(status, body.to_string().into_bytes())
        .with_header("content-type", "application/json")
}

fn route(req: &Request, registry: &Registry, metrics: &MetricsRegistry) -> Response {
    if req.method != "GET" {
        return json_error(405, "UNSUPPORTED");
    }
    let path = req.target.split('?').next().unwrap_or("");

    // Live metrics: the registry handed to this server at start, rendered
    // in Prometheus text exposition — scrapeable mid-study.
    if path == "/metrics" {
        return Response::new(200, dhub_obs::render_prometheus(metrics).into_bytes())
            .with_header("content-type", "text/plain; version=0.0.4");
    }

    // Token endpoint (the Bearer realm the 401 challenge points at).
    if path == "/token" {
        metrics.counter("dhub_http_token_grants_total").inc();
        let mut body = Json::obj();
        body.set("token", DEMO_TOKEN);
        return Response::new(200, body.to_string().into_bytes())
            .with_header("content-type", "application/json");
    }

    // /v2/ version check.
    if path == "/v2/" || path == "/v2" {
        return Response::new(200, b"{}".to_vec())
            .with_header("docker-distribution-api-version", "registry/2.0");
    }

    let Some(rest) = path.strip_prefix("/v2/") else {
        return json_error(404, "NOT_FOUND");
    };

    // <name>/manifests/<ref> | <name>/blobs/<digest> | <name>/tags/list —
    // the name itself may contain one '/'.
    if let Some((name, reference)) = rest.rsplit_once("/manifests/") {
        return manifest_endpoint(registry, name, reference, authed(req));
    }
    if let Some((name, digest)) = rest.rsplit_once("/blobs/") {
        return blob_endpoint(registry, name, digest, authed(req));
    }
    if let Some(name) = rest.strip_suffix("/tags/list") {
        return tags_endpoint(registry, name.trim_end_matches('/'), authed(req));
    }
    json_error(404, "NOT_FOUND")
}

/// Which fault operation an HTTP path belongs to, or `None` for paths the
/// fault plan never touches (version check, unknown routes).
fn http_fault_op(path: &str) -> Option<FaultOp> {
    if path == "/token" {
        return Some(FaultOp::Token);
    }
    if path == "/metrics" {
        // A scraper shares the wire with the crawl, so it shares its
        // transport faults too (never body damage — that allowed set is
        // reserved for manifests/blobs below).
        return Some(FaultOp::Search);
    }
    let rest = path.strip_prefix("/v2/")?;
    if rest.contains("/manifests/") {
        Some(FaultOp::Manifest)
    } else if rest.contains("/blobs/") {
        Some(FaultOp::Blob)
    } else if rest.ends_with("/tags/list") {
        Some(FaultOp::Search)
    } else {
        None
    }
}

/// Routes one request through the fault plan: transport faults (drop,
/// 429/503, auth flap, slow link) fire before the registry is consulted;
/// body damage (truncate, bit flip) is applied to successful responses.
/// Tallies `dhub_http_*` counters along the way.
fn route_faulty(
    req: &Request,
    registry: &Registry,
    faults: Option<&FaultInjector>,
    metrics: &MetricsRegistry,
) -> Routed {
    metrics.counter("dhub_http_requests_total").inc();
    let routed = route_faulty_inner(req, registry, faults, metrics);
    let status = match &routed {
        Routed::Respond(r) | Routed::RespondTruncated(r, _) => r.status,
        Routed::Drop => 0,
    };
    match status {
        200..=299 => metrics.counter("dhub_http_status_2xx_total").inc(),
        400..=499 => metrics.counter("dhub_http_status_4xx_total").inc(),
        500..=599 => metrics.counter("dhub_http_status_5xx_total").inc(),
        _ => {}
    }
    routed
}

fn route_faulty_inner(
    req: &Request,
    registry: &Registry,
    faults: Option<&FaultInjector>,
    metrics: &MetricsRegistry,
) -> Routed {
    let route = |req, registry| route(req, registry, metrics);
    let Some(inj) = faults else { return Routed::Respond(route(req, registry)) };
    let path = req.target.split('?').next().unwrap_or("");
    let Some(op) = http_fault_op(path) else { return Routed::Respond(route(req, registry)) };

    let mut allowed = vec![
        FaultKind::Drop,
        FaultKind::RateLimit,
        FaultKind::ServerError,
        FaultKind::SlowLink,
    ];
    if req.header("authorization").is_some() {
        // Token expiry mid-crawl: only a client that presented credentials
        // can watch them flap. Anonymous pulls (the study's default) are
        // never told to re-authenticate by this fault.
        allowed.push(FaultKind::AuthFlap);
    }
    if matches!(op, FaultOp::Manifest | FaultOp::Blob) {
        allowed.push(FaultKind::Truncate);
        allowed.push(FaultKind::Corrupt);
    }

    let key = fault_key(path.as_bytes());
    let decision = inj.decide(op, key, &allowed);
    if decision.is_some() {
        metrics.counter("dhub_http_wire_faults_total").inc();
    }
    match decision {
        None => Routed::Respond(route(req, registry)),
        Some(FaultKind::Drop) => Routed::Drop,
        Some(FaultKind::RateLimit) => Routed::Respond(json_error(429, "TOOMANYREQUESTS")),
        Some(FaultKind::ServerError) => Routed::Respond(json_error(503, "UNAVAILABLE")),
        Some(FaultKind::AuthFlap) => Routed::Respond(challenge(json_error(401, "UNAUTHORIZED"))),
        Some(FaultKind::SlowLink) => {
            std::thread::sleep(inj.slow_link());
            Routed::Respond(route(req, registry))
        }
        Some(FaultKind::Truncate) => {
            let resp = route(req, registry);
            if resp.status == 200 && !resp.body.is_empty() {
                let keep = (key as usize) % resp.body.len();
                Routed::RespondTruncated(resp, keep)
            } else {
                Routed::Respond(resp)
            }
        }
        Some(FaultKind::Corrupt) => {
            let mut resp = route(req, registry);
            if resp.status == 200 && !resp.body.is_empty() {
                let bit = (key as usize) % (resp.body.len() * 8);
                resp.body[bit / 8] ^= 1 << (bit % 8);
            }
            Routed::Respond(resp)
        }
    }
}

fn challenge(resp: Response) -> Response {
    resp.with_header("www-authenticate", "Bearer realm=\"/token\",service=\"dhub-registry\"")
}

fn repo_of(name: &str) -> Option<RepoName> {
    RepoName::parse(name)
}

fn manifest_endpoint(registry: &Registry, name: &str, reference: &str, authed: bool) -> Response {
    let Some(repo) = repo_of(name) else { return json_error(404, "NAME_INVALID") };
    match registry.get_manifest(&repo, reference, authed) {
        Ok(sess) => {
            let body = sess.manifest.to_json().into_bytes();
            Response::new(200, body)
                .with_header("content-type", "application/vnd.docker.distribution.manifest.v2+json")
                .with_header("docker-content-digest", &sess.manifest_digest.to_docker_string())
        }
        Err(ApiError::AuthRequired) => challenge(json_error(401, "UNAUTHORIZED")),
        Err(ApiError::TagNotFound) => json_error(404, "MANIFEST_UNKNOWN"),
        Err(ApiError::RepoNotFound) => json_error(404, "NAME_UNKNOWN"),
        Err(_) => json_error(404, "UNKNOWN"),
    }
}

fn blob_endpoint(registry: &Registry, name: &str, digest: &str, authed: bool) -> Response {
    let Some(repo) = repo_of(name) else { return json_error(404, "NAME_INVALID") };
    // Blob access obeys the repository's auth policy, like the real API.
    if registry.requires_auth(&repo).unwrap_or(false) && !authed {
        return challenge(json_error(401, "UNAUTHORIZED"));
    }
    let Some(d) = Digest::parse(digest) else { return json_error(404, "DIGEST_INVALID") };
    match registry.get_blob(&d) {
        Ok(blob) => Response::new(200, blob.as_ref().clone())
            .with_header("content-type", "application/octet-stream")
            .with_header("docker-content-digest", digest),
        Err(_) => json_error(404, "BLOB_UNKNOWN"),
    }
}

fn tags_endpoint(registry: &Registry, name: &str, authed: bool) -> Response {
    let Some(repo) = repo_of(name) else { return json_error(404, "NAME_INVALID") };
    if registry.requires_auth(&repo).unwrap_or(false) && !authed {
        return challenge(json_error(401, "UNAUTHORIZED"));
    }
    match registry.tags(&repo) {
        Some(mut tags) => {
            tags.sort();
            let mut body = Json::obj();
            body.set("name", name);
            body.set("tags", tags);
            Response::new(200, body.to_string().into_bytes())
                .with_header("content-type", "application/json")
        }
        None => json_error(404, "NAME_UNKNOWN"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::{LayerRef, Manifest};

    fn test_registry() -> Arc<Registry> {
        let reg = Registry::new();
        let blob = b"layer-bytes".to_vec();
        let repo = RepoName::official("nginx");
        reg.create_repo(repo.clone(), false);
        let manifest =
            Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
        reg.push_image(&repo, "latest", &manifest, vec![blob]).unwrap();

        let private = RepoName::user("corp", "secret");
        reg.create_repo(private.clone(), true);
        let pblob = b"private-bytes".to_vec();
        let pm = Manifest::new(vec![LayerRef { digest: Digest::of(&pblob), size: pblob.len() as u64 }]);
        reg.push_image(&private, "latest", &pm, vec![pblob]).unwrap();
        Arc::new(reg)
    }

    fn roundtrip(req: &Request, reg: &Registry) -> Response {
        route(req, reg, &MetricsRegistry::new())
    }

    fn faulty(req: &Request, reg: &Registry, inj: &FaultInjector) -> Routed {
        route_faulty(req, reg, Some(inj), &MetricsRegistry::new())
    }

    #[test]
    fn version_check() {
        let reg = test_registry();
        let resp = roundtrip(&Request::get("/v2/"), &reg);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("docker-distribution-api-version").unwrap(), "registry/2.0");
    }

    #[test]
    fn manifest_fetch_and_digest_header() {
        let reg = test_registry();
        let resp = roundtrip(&Request::get("/v2/nginx/manifests/latest"), &reg);
        assert_eq!(resp.status, 200);
        let m = Manifest::from_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(m.layers.len(), 1);
        let d = Digest::parse(resp.header("docker-content-digest").unwrap()).unwrap();
        assert_eq!(d, m.digest());
    }

    #[test]
    fn blob_fetch() {
        let reg = test_registry();
        let m = roundtrip(&Request::get("/v2/nginx/manifests/latest"), &reg);
        let manifest = Manifest::from_json(std::str::from_utf8(&m.body).unwrap()).unwrap();
        let digest = manifest.layers[0].digest.to_docker_string();
        let resp = roundtrip(&Request::get(&format!("/v2/nginx/blobs/{digest}")), &reg);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"layer-bytes");
    }

    #[test]
    fn auth_dance() {
        let reg = test_registry();
        // Anonymous → 401 with a challenge.
        let resp = roundtrip(&Request::get("/v2/corp/secret/manifests/latest"), &reg);
        assert_eq!(resp.status, 401);
        assert!(resp.header("www-authenticate").unwrap().contains("Bearer realm"));
        // Token endpoint issues the bearer token.
        let tok = roundtrip(&Request::get("/token"), &reg);
        assert_eq!(tok.status, 200);
        assert!(std::str::from_utf8(&tok.body).unwrap().contains(DEMO_TOKEN));
        // Authorized fetch succeeds.
        let resp = roundtrip(
            &Request::get("/v2/corp/secret/manifests/latest")
                .with_header("authorization", &format!("Bearer {DEMO_TOKEN}")),
            &reg,
        );
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn wrong_token_rejected() {
        let reg = test_registry();
        let resp = roundtrip(
            &Request::get("/v2/corp/secret/manifests/latest")
                .with_header("authorization", "Bearer wrong"),
            &reg,
        );
        assert_eq!(resp.status, 401);
    }

    #[test]
    fn unknown_routes_404() {
        let reg = test_registry();
        assert_eq!(roundtrip(&Request::get("/v2/ghost/manifests/latest"), &reg).status, 404);
        assert_eq!(roundtrip(&Request::get("/v2/nginx/manifests/v9"), &reg).status, 404);
        assert_eq!(roundtrip(&Request::get("/elsewhere"), &reg).status, 404);
        assert_eq!(
            roundtrip(&Request::get("/v2/nginx/blobs/sha256:zz"), &reg).status,
            404
        );
    }

    #[test]
    fn non_get_rejected() {
        let reg = test_registry();
        let mut req = Request::get("/v2/");
        req.method = "DELETE".into();
        assert_eq!(roundtrip(&req, &reg).status, 405);
    }

    #[test]
    fn tags_list() {
        let reg = test_registry();
        let resp = roundtrip(&Request::get("/v2/nginx/tags/list"), &reg);
        assert_eq!(resp.status, 200);
        let text = std::str::from_utf8(&resp.body).unwrap();
        assert!(text.contains("latest"), "{text}");
    }

    use dhub_faults::{FaultConfig, ALL_FAULT_KINDS};

    /// An injector that always fires `kind` (and nothing else).
    fn only(kind: FaultKind) -> FaultInjector {
        let mut cfg = FaultConfig::uniform(7, 1.0);
        for k in ALL_FAULT_KINDS {
            cfg = cfg.with_weight(k, if k == kind { 1 } else { 0 });
        }
        FaultInjector::new(cfg)
    }

    #[test]
    fn injected_rate_limit_then_drop() {
        let reg = test_registry();
        let req = Request::get("/v2/nginx/manifests/latest");
        match faulty(&req, &reg, &only(FaultKind::RateLimit)) {
            Routed::Respond(r) => assert_eq!(r.status, 429),
            _ => panic!("expected a 429 response"),
        }
        assert!(matches!(faulty(&req, &reg, &only(FaultKind::Drop)), Routed::Drop));
    }

    #[test]
    fn injected_truncation_keeps_prefix_only() {
        let reg = test_registry();
        let req = Request::get("/v2/nginx/manifests/latest");
        match faulty(&req, &reg, &only(FaultKind::Truncate)) {
            Routed::RespondTruncated(r, keep) => {
                assert_eq!(r.status, 200);
                assert!(keep < r.body.len());
            }
            _ => panic!("expected a truncated response"),
        }
    }

    #[test]
    fn injected_corruption_flips_one_bit() {
        let reg = test_registry();
        let req = Request::get("/v2/nginx/manifests/latest");
        let clean = roundtrip(&req, &reg);
        match faulty(&req, &reg, &only(FaultKind::Corrupt)) {
            Routed::Respond(r) => {
                assert_eq!(r.status, 200);
                assert_ne!(r.body, clean.body);
                let flipped: u32 = r
                    .body
                    .iter()
                    .zip(&clean.body)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(flipped, 1);
            }
            _ => panic!("expected a corrupted response"),
        }
    }

    #[test]
    fn auth_flap_spares_anonymous_requests() {
        let reg = test_registry();
        let inj = only(FaultKind::AuthFlap);
        // Anonymous request: AuthFlap is not in the allowed set, every other
        // weight is zero, so no fault fires at all.
        let req = Request::get("/v2/nginx/manifests/latest");
        match faulty(&req, &reg, &inj) {
            Routed::Respond(r) => assert_eq!(r.status, 200),
            _ => panic!("anonymous request must not fault"),
        }
        // The same request with credentials gets a re-auth challenge.
        let req = req.with_header("authorization", &format!("Bearer {DEMO_TOKEN}"));
        match faulty(&req, &reg, &inj) {
            Routed::Respond(r) => {
                assert_eq!(r.status, 401);
                assert!(r.header("www-authenticate").unwrap().contains("Bearer"));
            }
            _ => panic!("credentialed request should see the flap"),
        }
    }
}
