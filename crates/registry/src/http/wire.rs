//! HTTP/1.1 message codec (requests and responses, Content-Length framing).

use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted header block (defense against unbounded reads).
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted body (larger than any layer this simulation stores).
const MAX_BODY_BYTES: usize = 1 << 31;

/// Wire-level errors.
#[derive(Debug)]
pub enum WireError {
    Io(std::io::Error),
    /// Malformed start line or header.
    Malformed(&'static str),
    /// Header block or body exceeded limits.
    TooLarge,
    /// Peer closed before a complete message arrived.
    UnexpectedEof,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Malformed(what) => write!(f, "malformed http: {what}"),
            WireError::TooLarge => f.write_str("http message too large"),
            WireError::UnexpectedEof => f.write_str("connection closed mid-message"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// An HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    /// Path including query string, e.g. `/v2/nginx/manifests/latest`.
    pub target: String,
    /// Lower-cased header names.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a GET request.
    pub fn get(target: &str) -> Request {
        Request { method: "GET".into(), target: target.into(), headers: Vec::new(), body: Vec::new() }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers.push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First value of a header (name is case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Serializes onto a writer.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(w, "{} {} HTTP/1.1\r\n", self.method, self.target)?;
        for (n, v) in &self.headers {
            write!(w, "{n}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// An HTTP response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub reason: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// Builds a response with a body.
    pub fn new(status: u16, body: Vec<u8>) -> Response {
        let reason = match status {
            200 => "OK",
            401 => "Unauthorized",
            404 => "Not Found",
            400 => "Bad Request",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        };
        Response { status, reason: reason.into(), headers: Vec::new(), body }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First value of a header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Serializes onto a writer.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, self.reason)?;
        for (n, v) in &self.headers {
            write!(w, "{n}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Serializes a *lying* response: headers promise the full body
    /// (`content-length: body.len()`) but only the first `keep` bytes are
    /// written. The fault-injecting server uses this to model a connection
    /// cut mid-transfer; readers see [`WireError::UnexpectedEof`].
    pub fn write_truncated_to(&self, w: &mut impl Write, keep: usize) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, self.reason)?;
        for (n, v) in &self.headers {
            write!(w, "{n}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body[..keep.min(self.body.len())])?;
        w.flush()
    }
}

fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<String, WireError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Err(WireError::UnexpectedEof);
                }
                break;
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                if byte[0] != b'\r' {
                    line.push(byte[0]);
                }
                *budget = budget.checked_sub(1).ok_or(WireError::TooLarge)?;
            }
        }
    }
    String::from_utf8(line).map_err(|_| WireError::Malformed("non-utf8 header"))
}

fn read_headers(
    r: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Vec<(String, String)>, WireError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, budget)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line.split_once(':').ok_or(WireError::Malformed("header colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn read_body(
    r: &mut impl BufRead,
    headers: &[(String, String)],
) -> Result<Vec<u8>, WireError> {
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse().map_err(|_| WireError::Malformed("content-length")))
        .transpose()?
        .unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(WireError::TooLarge);
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::UnexpectedEof
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(body)
}

/// Reads one request from a stream.
pub fn read_request(stream: &mut impl Read) -> Result<Request, WireError> {
    let mut r = BufReader::new(stream);
    let mut budget = MAX_HEADER_BYTES;
    let start = read_line(&mut r, &mut budget)?;
    let mut parts = start.split_whitespace();
    let method = parts.next().ok_or(WireError::Malformed("method"))?.to_string();
    let target = parts.next().ok_or(WireError::Malformed("target"))?.to_string();
    let version = parts.next().ok_or(WireError::Malformed("version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::Malformed("version"));
    }
    let headers = read_headers(&mut r, &mut budget)?;
    let body = read_body(&mut r, &headers)?;
    Ok(Request { method, target, headers, body })
}

/// Reads one response from a stream.
pub fn read_response(stream: &mut impl Read) -> Result<Response, WireError> {
    let mut r = BufReader::new(stream);
    let mut budget = MAX_HEADER_BYTES;
    let start = read_line(&mut r, &mut budget)?;
    let mut parts = start.splitn(3, ' ');
    let version = parts.next().ok_or(WireError::Malformed("version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::Malformed("version"));
    }
    let status: u16 = parts
        .next()
        .ok_or(WireError::Malformed("status"))?
        .parse()
        .map_err(|_| WireError::Malformed("status"))?;
    let reason = parts.next().unwrap_or("").to_string();
    let headers = read_headers(&mut r, &mut budget)?;
    let body = read_body(&mut r, &headers)?;
    Ok(Response { status, reason, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::get("/v2/nginx/manifests/latest")
            .with_header("Accept", "application/vnd.docker.distribution.manifest.v2+json")
            .with_header("Authorization", "Bearer tok123");
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let back = read_request(&mut buf.as_slice()).unwrap();
        assert_eq!(back.method, "GET");
        assert_eq!(back.target, "/v2/nginx/manifests/latest");
        assert_eq!(back.header("accept").unwrap(), "application/vnd.docker.distribution.manifest.v2+json");
        assert_eq!(back.header("AUTHORIZATION").unwrap(), "Bearer tok123");
        assert!(back.body.is_empty());
    }

    #[test]
    fn response_roundtrip_with_body() {
        let resp = Response::new(200, b"{\"ok\":true}".to_vec()).with_header("Content-Type", "application/json");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.body, b"{\"ok\":true}");
        assert_eq!(back.header("content-type").unwrap(), "application/json");
    }

    #[test]
    fn binary_body_survives() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(70_000).collect();
        let resp = Response::new(200, payload.clone());
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!(back.body, payload);
    }

    #[test]
    fn rejects_malformed_start_line() {
        assert!(matches!(read_request(&mut &b"NOPE\r\n\r\n"[..]), Err(WireError::Malformed(_))));
        assert!(matches!(
            read_request(&mut &b"GET /x SPDY/3\r\n\r\n"[..]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_bad_header() {
        let raw = b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n";
        assert!(matches!(read_request(&mut &raw[..]), Err(WireError::Malformed(_))));
    }

    #[test]
    fn eof_mid_body_detected() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 100\r\n\r\nshort";
        assert!(matches!(read_response(&mut &raw[..]), Err(WireError::UnexpectedEof)));
    }

    #[test]
    fn empty_stream_is_eof() {
        assert!(matches!(read_request(&mut &b""[..]), Err(WireError::UnexpectedEof)));
    }

    #[test]
    fn header_budget_enforced() {
        let mut raw = b"GET / HTTP/1.1\r\nx: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(read_request(&mut raw.as_slice()), Err(WireError::TooLarge)));
    }

    #[test]
    fn truncated_write_reads_as_eof() {
        let resp = Response::new(200, vec![7u8; 1000]);
        let mut buf = Vec::new();
        resp.write_truncated_to(&mut buf, 300).unwrap();
        assert!(matches!(read_response(&mut buf.as_slice()), Err(WireError::UnexpectedEof)));
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let raw = b"HTTP/1.1 404 Not Found\r\n\r\n";
        let resp = read_response(&mut &raw[..]).unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.body.is_empty());
    }
}
