//! Registry V2 HTTP client — the transport the paper's downloader used.
//!
//! [`RemoteRegistry`] mirrors the in-process [`crate::Registry`] read API
//! (manifest/blob/tags) over TCP, including the token dance: on a `401`
//! challenge it fetches a bearer token from the advertised realm and
//! retries once, exactly as `docker pull` does.

use crate::http::wire::{read_response, Request, Response, WireError};
use dhub_faults::{fault_key, RetryClass, RetryPolicy};
use dhub_model::{Digest, Manifest, RepoName};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Wire(WireError),
    /// Server said 401 and the token retry also failed.
    AuthRequired,
    /// 404 family.
    NotFound,
    /// HTTP 429 — backed off by the registry's rate limiter.
    RateLimited,
    /// HTTP 5xx — transient server-side failure.
    Unavailable,
    /// Manifest body failed verification (unparseable, or its content
    /// digest disagrees with the `Docker-Content-Digest` header).
    CorruptManifest,
    /// Blob bytes do not hash to the digest they were requested by.
    CorruptBlob,
    /// 401 served to a request carrying a freshly issued token — the auth
    /// state flapped server-side (mid-crawl token expiry), which is a
    /// transport hiccup, not an auth verdict about the repository.
    TokenFlap,
    /// Anything else unexpected.
    Protocol(String),
}

impl ClientError {
    /// Whether another attempt could plausibly succeed. Transport faults
    /// and corruption are transient; auth walls and 404s are facts about
    /// the repository, which the paper classified instead of retrying.
    pub fn retry_class(&self) -> RetryClass {
        match self {
            ClientError::Io(_)
            | ClientError::Wire(_)
            | ClientError::RateLimited
            | ClientError::Unavailable
            | ClientError::CorruptManifest
            | ClientError::CorruptBlob
            | ClientError::TokenFlap => RetryClass::Retryable,
            ClientError::AuthRequired | ClientError::NotFound | ClientError::Protocol(_) => {
                RetryClass::Terminal
            }
        }
    }

    /// `retry_class() == Retryable`, as a predicate.
    pub fn is_retryable(&self) -> bool {
        self.retry_class() == RetryClass::Retryable
    }

    fn is_corruption(&self) -> bool {
        matches!(self, ClientError::CorruptManifest | ClientError::CorruptBlob)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::AuthRequired => f.write_str("authentication required"),
            ClientError::NotFound => f.write_str("not found"),
            ClientError::RateLimited => f.write_str("rate limited (429)"),
            ClientError::Unavailable => f.write_str("server unavailable (5xx)"),
            ClientError::CorruptManifest => f.write_str("manifest failed digest verification"),
            ClientError::CorruptBlob => f.write_str("blob failed digest verification"),
            ClientError::TokenFlap => f.write_str("fresh token rejected (auth flap)"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Counters of what the retry loop did over a client's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts re-issued after a retryable error.
    pub retries: u64,
    /// Operations abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// The subset of `retries` caused by failed digest verification.
    pub corrupt_retries: u64,
    /// Nanoseconds of scheduled backoff slept between attempts
    /// (deterministic per the policy — see `RetryPolicy::cumulative_delay`).
    pub backoff_ns: u64,
}

/// An HTTP client bound to one registry address.
pub struct RemoteRegistry {
    addr: SocketAddr,
    /// Cached bearer token from a previous challenge.
    token: dhub_sync::Mutex<Option<String>>,
    /// Whether to attempt the token dance on 401 (the study's anonymous
    /// downloader does not hold credentials; `docker login` users do).
    pub use_token_auth: bool,
    /// Backoff schedule applied to retryable errors.
    policy: RetryPolicy,
    retries: AtomicU64,
    gave_up: AtomicU64,
    corrupt_retries: AtomicU64,
    backoff_ns: AtomicU64,
}

impl RemoteRegistry {
    /// Creates a client for `addr` that performs the token dance.
    pub fn connect(addr: SocketAddr) -> RemoteRegistry {
        RemoteRegistry {
            addr,
            token: dhub_sync::Mutex::new(None),
            use_token_auth: true,
            policy: RetryPolicy::default(),
            retries: AtomicU64::new(0),
            gave_up: AtomicU64::new(0),
            corrupt_retries: AtomicU64::new(0),
            backoff_ns: AtomicU64::new(0),
        }
    }

    /// Creates an anonymous client (no token dance — the study's stance).
    pub fn connect_anonymous(addr: SocketAddr) -> RemoteRegistry {
        RemoteRegistry { use_token_auth: false, ..RemoteRegistry::connect(addr) }
    }

    /// Builder: replaces the retry policy (e.g. [`RetryPolicy::none`] to
    /// fail fast, [`RetryPolicy::fast`] in tests).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> RemoteRegistry {
        self.policy = policy;
        self
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Snapshot of the retry counters.
    pub fn retry_stats(&self) -> RetryStats {
        RetryStats {
            retries: self.retries.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
            corrupt_retries: self.corrupt_retries.load(Ordering::Relaxed),
            backoff_ns: self.backoff_ns.load(Ordering::Relaxed),
        }
    }

    /// Runs `op` under the retry policy: retryable errors sleep the
    /// jittered backoff delay and re-issue, up to `max_retries` extra
    /// attempts; terminal errors surface immediately.
    fn retrying<T>(
        &self,
        key: u64,
        op: impl Fn() -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    if e.is_corruption() {
                        self.corrupt_retries.fetch_add(1, Ordering::Relaxed);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let slept = self.policy.sleep(key, attempt);
                    self.backoff_ns.fetch_add(slept.as_nanos() as u64, Ordering::Relaxed);
                    attempt += 1;
                }
                Err(e) => {
                    if e.is_retryable() {
                        self.gave_up.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            }
        }
    }

    fn send(&self, req: Request) -> Result<Response, ClientError> {
        self.send_with_token(req, true)
    }

    fn send_with_token(&self, mut req: Request, attach_token: bool) -> Result<Response, ClientError> {
        if attach_token {
            if let Some(tok) = self.token.lock().clone() {
                req = req.with_header("authorization", &format!("Bearer {tok}"));
            }
        }
        let mut stream = TcpStream::connect(self.addr)?;
        req = req.with_header("connection", "close");
        req.write_to(&mut stream)?;
        Ok(read_response(&mut stream)?)
    }

    /// GET with one 401-token-retry round, like the Docker client.
    fn get(&self, target: &str) -> Result<Response, ClientError> {
        let resp = self.send(Request::get(target))?;
        if resp.status != 401 {
            return Ok(resp);
        }
        if !self.use_token_auth {
            return Err(ClientError::AuthRequired);
        }
        // Parse the realm out of the WWW-Authenticate challenge.
        let challenge = resp
            .header("www-authenticate")
            .ok_or_else(|| ClientError::Protocol("401 without challenge".into()))?;
        let realm = challenge
            .split("realm=\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .ok_or_else(|| ClientError::Protocol("challenge without realm".into()))?
            .to_string();
        // The realm request is unauthenticated: a stale Bearer is not a
        // credential for the token service, and sending one would let an
        // auth flap masquerade as a terminal 401 from the token endpoint.
        let tok_resp = self.send_with_token(Request::get(&realm), false)?;
        match tok_resp.status {
            200 => {}
            // A flaky token endpoint is a transport problem, not an auth
            // verdict — let the retry loop take another run at it.
            429 => return Err(ClientError::RateLimited),
            s if s >= 500 => return Err(ClientError::Unavailable),
            _ => return Err(ClientError::AuthRequired),
        }
        let body = std::str::from_utf8(&tok_resp.body)
            .map_err(|_| ClientError::Protocol("token not utf8".into()))?;
        let token = dhub_json::parse(body)
            .ok()
            .and_then(|j| j.get("token").and_then(|t| t.as_str().map(String::from)))
            .ok_or_else(|| ClientError::Protocol("token payload".into()))?;
        *self.token.lock() = Some(token);
        let retry = self.send(Request::get(target))?;
        if retry.status == 401 {
            // The token we just minted was rejected — a transient auth
            // flap, not proof the repository is walled off. Discard the
            // token and let the retry loop run the dance again.
            *self.token.lock() = None;
            return Err(ClientError::TokenFlap);
        }
        Ok(retry)
    }

    /// Scrapes the server's `/metrics` endpoint (Prometheus text
    /// exposition), retrying transient transport failures — a scraper must
    /// survive the same wire faults the data path does.
    pub fn metrics_text(&self) -> Result<String, ClientError> {
        let key = fault_key(b"/metrics");
        self.retrying(key, || {
            let resp = self.get("/metrics")?;
            match resp.status {
                200 => String::from_utf8(resp.body)
                    .map_err(|_| ClientError::Protocol("metrics not utf8".into())),
                429 => Err(ClientError::RateLimited),
                s if s >= 500 => Err(ClientError::Unavailable),
                s => Err(ClientError::Protocol(format!("metrics -> {s}"))),
            }
        })
    }

    /// Checks the `/v2/` version endpoint.
    pub fn ping(&self) -> Result<(), ClientError> {
        let resp = self.get("/v2/")?;
        if resp.status == 200 {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("/v2/ -> {}", resp.status)))
        }
    }

    /// Fetches and parses a manifest, retrying transient failures; returns
    /// it with its content digest. The body is *verified*: an unparseable
    /// manifest or one whose recomputed digest disagrees with the
    /// `Docker-Content-Digest` header is treated as wire corruption and
    /// re-fetched, not trusted.
    pub fn get_manifest(&self, repo: &RepoName, reference: &str) -> Result<(Digest, Manifest), ClientError> {
        let key = fault_key(format!("{}:{reference}", repo.full()).as_bytes());
        self.retrying(key, || self.get_manifest_once(repo, reference))
    }

    fn get_manifest_once(
        &self,
        repo: &RepoName,
        reference: &str,
    ) -> Result<(Digest, Manifest), ClientError> {
        let resp = self.get(&format!("/v2/{}/manifests/{reference}", repo.full()))?;
        match resp.status {
            200 => {
                // A well-formed server only sends bytes that parse and
                // hash to the advertised digest — anything else means the
                // body was damaged in flight. The content digest covers
                // the *raw bytes on the wire* (as Docker's does), so even
                // a flip that JSON canonicalization would erase is caught.
                let wire_digest = Digest::of(&resp.body);
                if let Some(advertised) = resp.header("docker-content-digest").and_then(Digest::parse)
                {
                    if advertised != wire_digest {
                        return Err(ClientError::CorruptManifest);
                    }
                }
                let Some(manifest) =
                    std::str::from_utf8(&resp.body).ok().and_then(Manifest::from_json)
                else {
                    return Err(ClientError::CorruptManifest);
                };
                Ok((wire_digest, manifest))
            }
            404 => Err(ClientError::NotFound),
            429 => Err(ClientError::RateLimited),
            s if s >= 500 => Err(ClientError::Unavailable),
            s => Err(ClientError::Protocol(format!("manifest -> {s}"))),
        }
    }

    /// Fetches a blob, retrying transient failures, and verifies that the
    /// bytes hash to the requested digest (re-fetching on mismatch).
    pub fn get_blob(&self, repo: &RepoName, digest: &Digest) -> Result<Vec<u8>, ClientError> {
        let key = fault_key(digest.to_docker_string().as_bytes());
        self.retrying(key, || self.get_blob_once(repo, digest))
    }

    fn get_blob_once(&self, repo: &RepoName, digest: &Digest) -> Result<Vec<u8>, ClientError> {
        let resp = self.get(&format!("/v2/{}/blobs/{digest}", repo.full()))?;
        match resp.status {
            200 => {
                if Digest::of(&resp.body) != *digest {
                    return Err(ClientError::CorruptBlob);
                }
                Ok(resp.body)
            }
            404 => Err(ClientError::NotFound),
            429 => Err(ClientError::RateLimited),
            s if s >= 500 => Err(ClientError::Unavailable),
            s => Err(ClientError::Protocol(format!("blob -> {s}"))),
        }
    }

    /// Lists a repository's tags, retrying transient failures.
    pub fn tags(&self, repo: &RepoName) -> Result<Vec<String>, ClientError> {
        let key = fault_key(format!("{}/tags", repo.full()).as_bytes());
        self.retrying(key, || self.tags_once(repo))
    }

    fn tags_once(&self, repo: &RepoName) -> Result<Vec<String>, ClientError> {
        let resp = self.get(&format!("/v2/{}/tags/list", repo.full()))?;
        match resp.status {
            200 => {
                let text = std::str::from_utf8(&resp.body)
                    .map_err(|_| ClientError::Protocol("tags not utf8".into()))?;
                let j = dhub_json::parse(text).map_err(|e| ClientError::Protocol(e.to_string()))?;
                let tags = j
                    .get("tags")
                    .and_then(|t| t.as_arr())
                    .map(|a| a.iter().filter_map(|t| t.as_str().map(String::from)).collect())
                    .unwrap_or_default();
                Ok(tags)
            }
            404 => Err(ClientError::NotFound),
            429 => Err(ClientError::RateLimited),
            s if s >= 500 => Err(ClientError::Unavailable),
            s => Err(ClientError::Protocol(format!("tags -> {s}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Registry;
    use crate::http::server::RegistryServer;
    use dhub_model::{LayerRef, Manifest};
    use std::sync::Arc;

    fn server() -> (RegistryServer, Arc<Registry>) {
        let reg = Arc::new(Registry::new());
        let blob = b"http layer payload".to_vec();
        let repo = RepoName::official("nginx");
        reg.create_repo(repo.clone(), false);
        let manifest =
            Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
        reg.push_image(&repo, "latest", &manifest, vec![blob]).unwrap();

        let private = RepoName::user("corp", "vault");
        reg.create_repo(private.clone(), true);
        let pb = b"classified".to_vec();
        let pm = Manifest::new(vec![LayerRef { digest: Digest::of(&pb), size: pb.len() as u64 }]);
        reg.push_image(&private, "latest", &pm, vec![pb]).unwrap();

        (RegistryServer::start(reg.clone()).unwrap(), reg)
    }

    #[test]
    fn ping_over_tcp() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect(srv.addr());
        client.ping().unwrap();
        srv.shutdown();
    }

    #[test]
    fn pull_over_tcp() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect(srv.addr());
        let repo = RepoName::official("nginx");
        let (digest, manifest) = client.get_manifest(&repo, "latest").unwrap();
        assert_eq!(digest, manifest.digest());
        let blob = client.get_blob(&repo, &manifest.layers[0].digest).unwrap();
        assert_eq!(blob, b"http layer payload");
        srv.shutdown();
    }

    #[test]
    fn token_dance_grants_private_access() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect(srv.addr());
        let repo = RepoName::user("corp", "vault");
        let (_d, m) = client.get_manifest(&repo, "latest").unwrap();
        assert_eq!(m.layers.len(), 1);
        let blob = client.get_blob(&repo, &m.layers[0].digest).unwrap();
        assert_eq!(blob, b"classified");
        srv.shutdown();
    }

    #[test]
    fn anonymous_client_hits_auth_wall() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect_anonymous(srv.addr());
        let repo = RepoName::user("corp", "vault");
        assert!(matches!(client.get_manifest(&repo, "latest"), Err(ClientError::AuthRequired)));
        // Public repos still work anonymously.
        let nginx = RepoName::official("nginx");
        assert!(client.get_manifest(&nginx, "latest").is_ok());
        srv.shutdown();
    }

    #[test]
    fn missing_things_are_not_found() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect(srv.addr());
        let ghost = RepoName::official("ghost");
        assert!(matches!(client.get_manifest(&ghost, "latest"), Err(ClientError::NotFound)));
        let nginx = RepoName::official("nginx");
        assert!(matches!(client.get_manifest(&nginx, "v9"), Err(ClientError::NotFound)));
        assert!(matches!(
            client.get_blob(&nginx, &Digest::of(b"no such blob")),
            Err(ClientError::NotFound)
        ));
        srv.shutdown();
    }

    #[test]
    fn tags_over_tcp() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect(srv.addr());
        let tags = client.tags(&RepoName::official("nginx")).unwrap();
        assert_eq!(tags, vec!["latest"]);
        srv.shutdown();
    }

    use dhub_faults::{FaultConfig, FaultInjector, FaultKind, ALL_FAULT_KINDS};

    fn faulty_server(cfg: FaultConfig) -> (RegistryServer, Arc<FaultInjector>) {
        let reg = Arc::new(Registry::new());
        let blob = b"http layer payload".to_vec();
        let repo = RepoName::official("nginx");
        reg.create_repo(repo.clone(), false);
        let manifest =
            Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
        reg.push_image(&repo, "latest", &manifest, vec![blob]).unwrap();
        let inj = Arc::new(FaultInjector::new(cfg));
        (RegistryServer::start_with_faults(reg, Some(inj.clone())).unwrap(), inj)
    }

    #[test]
    fn transient_faults_are_retried_away() {
        // Half the requests fault (drops, 429s, 5xxs, truncations, bit
        // flips); a patient client still pulls a byte-identical image.
        let (srv, inj) = faulty_server(FaultConfig::uniform(2024, 0.5));
        let client = RemoteRegistry::connect_anonymous(srv.addr())
            .with_retry_policy(RetryPolicy::fast(16).with_seed(7));
        let repo = RepoName::official("nginx");
        let (digest, manifest) = client.get_manifest(&repo, "latest").unwrap();
        assert_eq!(digest, manifest.digest());
        let blob = client.get_blob(&repo, &manifest.layers[0].digest).unwrap();
        assert_eq!(blob, b"http layer payload");
        let stats = client.retry_stats();
        assert!(stats.retries > 0, "rate 0.5 must have forced at least one retry");
        assert_eq!(stats.gave_up, 0);
        assert!(inj.stats().total() > 0);
        srv.shutdown();
    }

    #[test]
    fn no_retry_policy_surfaces_the_fault() {
        let cfg = ALL_FAULT_KINDS.iter().fold(FaultConfig::uniform(5, 1.0), |c, &k| {
            c.with_weight(k, u32::from(k == FaultKind::RateLimit))
        });
        let (srv, _inj) = faulty_server(cfg);
        let client =
            RemoteRegistry::connect_anonymous(srv.addr()).with_retry_policy(RetryPolicy::none());
        let repo = RepoName::official("nginx");
        assert!(matches!(client.get_manifest(&repo, "latest"), Err(ClientError::RateLimited)));
        assert_eq!(client.retry_stats().gave_up, 1);
        srv.shutdown();
    }

    #[test]
    fn corruption_is_detected_and_counted() {
        // Every response bit-flipped: digest verification must catch each
        // one, and the client gives up only after exhausting its budget.
        let cfg = ALL_FAULT_KINDS.iter().fold(FaultConfig::uniform(9, 1.0), |c, &k| {
            c.with_weight(k, u32::from(k == FaultKind::Corrupt))
        });
        let (srv, _inj) = faulty_server(cfg);
        let client = RemoteRegistry::connect_anonymous(srv.addr())
            .with_retry_policy(RetryPolicy::fast(2).with_seed(3));
        let repo = RepoName::official("nginx");
        assert!(matches!(
            client.get_manifest(&repo, "latest"),
            Err(ClientError::CorruptManifest)
        ));
        let stats = client.retry_stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.corrupt_retries, 2);
        assert_eq!(stats.gave_up, 1);
        srv.shutdown();
    }

    #[test]
    fn auth_flap_after_fresh_token_is_retried() {
        // Only AuthFlap faults, firing on 80 % of credentialed requests: a
        // post-token-dance 401 must be treated as transient (TokenFlap),
        // not misclassified into the terminal auth bucket.
        let cfg = ALL_FAULT_KINDS.iter().fold(FaultConfig::uniform(21, 0.8), |c, &k| {
            c.with_weight(k, u32::from(k == FaultKind::AuthFlap))
        });
        let reg = Arc::new(Registry::new());
        let private = RepoName::user("corp", "vault");
        reg.create_repo(private.clone(), true);
        let pb = b"classified".to_vec();
        let pm = Manifest::new(vec![LayerRef { digest: Digest::of(&pb), size: pb.len() as u64 }]);
        reg.push_image(&private, "latest", &pm, vec![pb]).unwrap();
        let inj = Arc::new(FaultInjector::new(cfg));
        let srv = RegistryServer::start_with_faults(reg, Some(inj.clone())).unwrap();

        let client = RemoteRegistry::connect(srv.addr())
            .with_retry_policy(RetryPolicy::fast(32).with_seed(11));
        let (_d, m) = client.get_manifest(&private, "latest").unwrap();
        let blob = client.get_blob(&private, &m.layers[0].digest).unwrap();
        assert_eq!(blob, b"classified");
        let stats = client.retry_stats();
        assert!(stats.retries > 0, "80 % flap rate must force at least one retry");
        assert_eq!(stats.gave_up, 0);
        assert!(inj.stats().total() > 0, "injector must actually have flapped");
        srv.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let (srv, _reg) = server();
        let addr = srv.addr();
        let handles: Vec<_> = (0..6)
            .map(|_| {
                std::thread::spawn(move || {
                    let client = RemoteRegistry::connect(addr);
                    let repo = RepoName::official("nginx");
                    let (_, m) = client.get_manifest(&repo, "latest").unwrap();
                    client.get_blob(&repo, &m.layers[0].digest).unwrap().len()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), b"http layer payload".len());
        }
        srv.shutdown();
    }
}
