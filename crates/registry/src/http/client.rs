//! Registry V2 HTTP client — the transport the paper's downloader used.
//!
//! [`RemoteRegistry`] mirrors the in-process [`crate::Registry`] read API
//! (manifest/blob/tags) over TCP, including the token dance: on a `401`
//! challenge it fetches a bearer token from the advertised realm and
//! retries once, exactly as `docker pull` does.

use crate::http::wire::{read_response, Request, Response, WireError};
use dhub_model::{Digest, Manifest, RepoName};
use std::net::{SocketAddr, TcpStream};

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Wire(WireError),
    /// Server said 401 and the token retry also failed.
    AuthRequired,
    /// 404 family.
    NotFound,
    /// Anything else unexpected.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::AuthRequired => f.write_str("authentication required"),
            ClientError::NotFound => f.write_str("not found"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// An HTTP client bound to one registry address.
pub struct RemoteRegistry {
    addr: SocketAddr,
    /// Cached bearer token from a previous challenge.
    token: dhub_sync::Mutex<Option<String>>,
    /// Whether to attempt the token dance on 401 (the study's anonymous
    /// downloader does not hold credentials; `docker login` users do).
    pub use_token_auth: bool,
}

impl RemoteRegistry {
    /// Creates a client for `addr` that performs the token dance.
    pub fn connect(addr: SocketAddr) -> RemoteRegistry {
        RemoteRegistry { addr, token: dhub_sync::Mutex::new(None), use_token_auth: true }
    }

    /// Creates an anonymous client (no token dance — the study's stance).
    pub fn connect_anonymous(addr: SocketAddr) -> RemoteRegistry {
        RemoteRegistry { addr, token: dhub_sync::Mutex::new(None), use_token_auth: false }
    }

    fn send(&self, mut req: Request) -> Result<Response, ClientError> {
        if let Some(tok) = self.token.lock().clone() {
            req = req.with_header("authorization", &format!("Bearer {tok}"));
        }
        let mut stream = TcpStream::connect(self.addr)?;
        req = req.with_header("connection", "close");
        req.write_to(&mut stream)?;
        Ok(read_response(&mut stream)?)
    }

    /// GET with one 401-token-retry round, like the Docker client.
    fn get(&self, target: &str) -> Result<Response, ClientError> {
        let resp = self.send(Request::get(target))?;
        if resp.status != 401 {
            return Ok(resp);
        }
        if !self.use_token_auth {
            return Err(ClientError::AuthRequired);
        }
        // Parse the realm out of the WWW-Authenticate challenge.
        let challenge = resp
            .header("www-authenticate")
            .ok_or_else(|| ClientError::Protocol("401 without challenge".into()))?;
        let realm = challenge
            .split("realm=\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .ok_or_else(|| ClientError::Protocol("challenge without realm".into()))?
            .to_string();
        let tok_resp = self.send(Request::get(&realm))?;
        if tok_resp.status != 200 {
            return Err(ClientError::AuthRequired);
        }
        let body = std::str::from_utf8(&tok_resp.body)
            .map_err(|_| ClientError::Protocol("token not utf8".into()))?;
        let token = dhub_json::parse(body)
            .ok()
            .and_then(|j| j.get("token").and_then(|t| t.as_str().map(String::from)))
            .ok_or_else(|| ClientError::Protocol("token payload".into()))?;
        *self.token.lock() = Some(token);
        let retry = self.send(Request::get(target))?;
        if retry.status == 401 {
            return Err(ClientError::AuthRequired);
        }
        Ok(retry)
    }

    /// Checks the `/v2/` version endpoint.
    pub fn ping(&self) -> Result<(), ClientError> {
        let resp = self.get("/v2/")?;
        if resp.status == 200 {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("/v2/ -> {}", resp.status)))
        }
    }

    /// Fetches and parses a manifest; returns it with its content digest
    /// from the `Docker-Content-Digest` header.
    pub fn get_manifest(&self, repo: &RepoName, reference: &str) -> Result<(Digest, Manifest), ClientError> {
        let resp = self.get(&format!("/v2/{}/manifests/{reference}", repo.full()))?;
        match resp.status {
            200 => {
                let text = std::str::from_utf8(&resp.body)
                    .map_err(|_| ClientError::Protocol("manifest not utf8".into()))?;
                let manifest = Manifest::from_json(text)
                    .ok_or_else(|| ClientError::Protocol("manifest parse".into()))?;
                let digest = resp
                    .header("docker-content-digest")
                    .and_then(Digest::parse)
                    .unwrap_or_else(|| manifest.digest());
                Ok((digest, manifest))
            }
            404 => Err(ClientError::NotFound),
            s => Err(ClientError::Protocol(format!("manifest -> {s}"))),
        }
    }

    /// Fetches a blob and verifies its digest.
    pub fn get_blob(&self, repo: &RepoName, digest: &Digest) -> Result<Vec<u8>, ClientError> {
        let resp = self.get(&format!("/v2/{}/blobs/{digest}", repo.full()))?;
        match resp.status {
            200 => {
                if Digest::of(&resp.body) != *digest {
                    return Err(ClientError::Protocol("blob digest mismatch".into()));
                }
                Ok(resp.body)
            }
            404 => Err(ClientError::NotFound),
            s => Err(ClientError::Protocol(format!("blob -> {s}"))),
        }
    }

    /// Lists a repository's tags.
    pub fn tags(&self, repo: &RepoName) -> Result<Vec<String>, ClientError> {
        let resp = self.get(&format!("/v2/{}/tags/list", repo.full()))?;
        match resp.status {
            200 => {
                let text = std::str::from_utf8(&resp.body)
                    .map_err(|_| ClientError::Protocol("tags not utf8".into()))?;
                let j = dhub_json::parse(text).map_err(|e| ClientError::Protocol(e.to_string()))?;
                let tags = j
                    .get("tags")
                    .and_then(|t| t.as_arr())
                    .map(|a| a.iter().filter_map(|t| t.as_str().map(String::from)).collect())
                    .unwrap_or_default();
                Ok(tags)
            }
            404 => Err(ClientError::NotFound),
            s => Err(ClientError::Protocol(format!("tags -> {s}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Registry;
    use crate::http::server::RegistryServer;
    use dhub_model::{LayerRef, Manifest};
    use std::sync::Arc;

    fn server() -> (RegistryServer, Arc<Registry>) {
        let reg = Arc::new(Registry::new());
        let blob = b"http layer payload".to_vec();
        let repo = RepoName::official("nginx");
        reg.create_repo(repo.clone(), false);
        let manifest =
            Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
        reg.push_image(&repo, "latest", &manifest, vec![blob]).unwrap();

        let private = RepoName::user("corp", "vault");
        reg.create_repo(private.clone(), true);
        let pb = b"classified".to_vec();
        let pm = Manifest::new(vec![LayerRef { digest: Digest::of(&pb), size: pb.len() as u64 }]);
        reg.push_image(&private, "latest", &pm, vec![pb]).unwrap();

        (RegistryServer::start(reg.clone()).unwrap(), reg)
    }

    #[test]
    fn ping_over_tcp() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect(srv.addr());
        client.ping().unwrap();
        srv.shutdown();
    }

    #[test]
    fn pull_over_tcp() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect(srv.addr());
        let repo = RepoName::official("nginx");
        let (digest, manifest) = client.get_manifest(&repo, "latest").unwrap();
        assert_eq!(digest, manifest.digest());
        let blob = client.get_blob(&repo, &manifest.layers[0].digest).unwrap();
        assert_eq!(blob, b"http layer payload");
        srv.shutdown();
    }

    #[test]
    fn token_dance_grants_private_access() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect(srv.addr());
        let repo = RepoName::user("corp", "vault");
        let (_d, m) = client.get_manifest(&repo, "latest").unwrap();
        assert_eq!(m.layers.len(), 1);
        let blob = client.get_blob(&repo, &m.layers[0].digest).unwrap();
        assert_eq!(blob, b"classified");
        srv.shutdown();
    }

    #[test]
    fn anonymous_client_hits_auth_wall() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect_anonymous(srv.addr());
        let repo = RepoName::user("corp", "vault");
        assert!(matches!(client.get_manifest(&repo, "latest"), Err(ClientError::AuthRequired)));
        // Public repos still work anonymously.
        let nginx = RepoName::official("nginx");
        assert!(client.get_manifest(&nginx, "latest").is_ok());
        srv.shutdown();
    }

    #[test]
    fn missing_things_are_not_found() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect(srv.addr());
        let ghost = RepoName::official("ghost");
        assert!(matches!(client.get_manifest(&ghost, "latest"), Err(ClientError::NotFound)));
        let nginx = RepoName::official("nginx");
        assert!(matches!(client.get_manifest(&nginx, "v9"), Err(ClientError::NotFound)));
        assert!(matches!(
            client.get_blob(&nginx, &Digest::of(b"no such blob")),
            Err(ClientError::NotFound)
        ));
        srv.shutdown();
    }

    #[test]
    fn tags_over_tcp() {
        let (srv, _reg) = server();
        let client = RemoteRegistry::connect(srv.addr());
        let tags = client.tags(&RepoName::official("nginx")).unwrap();
        assert_eq!(tags, vec!["latest"]);
        srv.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let (srv, _reg) = server();
        let addr = srv.addr();
        let handles: Vec<_> = (0..6)
            .map(|_| {
                std::thread::spawn(move || {
                    let client = RemoteRegistry::connect(addr);
                    let repo = RepoName::official("nginx");
                    let (_, m) = client.get_manifest(&repo, "latest").unwrap();
                    client.get_blob(&repo, &m.layers[0].digest).unwrap().len()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), b"http layer payload".len());
        }
        srv.shutdown();
    }
}
