//! Tiny command-line argument parser (no external dependencies).
//!
//! Supports `dhub <command> [positionals] [--flag] [--key value]`. Flags
//! may appear anywhere after the command; `--key=value` is accepted too.

use std::collections::BTreeMap;

/// Parse errors, rendered to the user by `main`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No command given.
    MissingCommand,
    /// `--key` given without a value (for options that need one).
    MissingValue(String),
    /// A value failed to parse as the expected type.
    BadValue { key: String, value: String },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => f.write_str("missing command (try `dhub help`)"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::BadValue { key, value } => write!(f, "option --{key}: cannot parse {value:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// A parsed command line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Parsed {
    pub command: String,
    pub positionals: Vec<String>,
    /// `--key value` and `--key=value` pairs; bare `--flag` maps to "".
    pub options: BTreeMap<String, String>,
}

impl Parsed {
    /// Parses `args` (without the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Parsed, ArgError> {
        let mut it = args.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        let mut parsed = Parsed { command, ..Parsed::default() };
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if let Some((k, v)) = key.split_once('=') {
                    parsed.options.insert(k.to_string(), v.to_string());
                } else if it.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    let v = it.next().expect("peeked");
                    parsed.options.insert(key.to_string(), v);
                } else {
                    parsed.options.insert(key.to_string(), String::new());
                }
            } else {
                parsed.positionals.push(arg);
            }
        }
        Ok(parsed)
    }

    /// A numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) if v.is_empty() => Err(ArgError::MissingValue(key.to_string())),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue { key: key.to_string(), value: v.clone() }),
        }
    }

    /// A string option with a default.
    pub fn str(&self, key: &str, default: &str) -> String {
        match self.options.get(key) {
            Some(v) if !v.is_empty() => v.clone(),
            _ => default.to_string(),
        }
    }

    /// Whether a bare flag is present.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// The n-th positional argument.
    pub fn pos(&self, n: usize) -> Option<&str> {
        self.positionals.get(n).map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Parsed {
        Parsed::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn command_and_positionals() {
        let a = p(&["pull", "nginx", "latest"]);
        assert_eq!(a.command, "pull");
        assert_eq!(a.pos(0), Some("nginx"));
        assert_eq!(a.pos(1), Some("latest"));
        assert_eq!(a.pos(2), None);
    }

    #[test]
    fn options_space_and_equals() {
        let a = p(&["generate", "--repos", "200", "--seed=7", "--verbose"]);
        assert_eq!(a.num("repos", 0usize).unwrap(), 200);
        assert_eq!(a.num("seed", 0u64).unwrap(), 7);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.num("scale", 128u64).unwrap(), 128, "default applies");
    }

    #[test]
    fn flag_followed_by_option() {
        let a = p(&["report", "--json", "--repos", "50"]);
        assert!(a.flag("json"));
        assert_eq!(a.num("repos", 0usize).unwrap(), 50);
    }

    #[test]
    fn bad_number_is_error() {
        let a = p(&["generate", "--repos", "many"]);
        assert!(matches!(a.num("repos", 0usize), Err(ArgError::BadValue { .. })));
    }

    #[test]
    fn missing_command() {
        assert_eq!(Parsed::parse(std::iter::empty()), Err(ArgError::MissingCommand));
    }

    #[test]
    fn str_option_default() {
        let a = p(&["serve", "--tag", "v2"]);
        assert_eq!(a.str("tag", "latest"), "v2");
        assert_eq!(a.str("other", "latest"), "latest");
    }

    #[test]
    fn positional_after_flag_value() {
        // "--repos 10 nginx": nginx is positional.
        let a = p(&["pull", "--repos", "10", "nginx"]);
        assert_eq!(a.pos(0), Some("nginx"));
    }
}
