//! `dhub` command implementations.
//!
//! Every command takes the parsed arguments and a writer (so tests can
//! capture output) and returns an exit code.

use crate::args::Parsed;
use dhub_faults::{FaultConfig, FaultInjector, RetryPolicy};
use dhub_model::RepoName;
use dhub_obs::{render_prometheus, MetricsRegistry, ProgressReporter};
use dhub_study::figures;
use dhub_study::pipeline::{run_study_obs, StudyData};
use dhub_synth::{generate_hub, SynthConfig, SyntheticHub};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// Usage text for `dhub help`.
pub const USAGE: &str = "\
dhub — synthetic Docker Hub studies (CLUSTER'19 reproduction)

USAGE:
  dhub <command> [options]

COMMANDS:
  help                      show this message
  generate                  build a hub and print its summary
  report                    run the pipeline and print all paper figures
  summary                   run the pipeline and print Table 1 + Table 2
  pull <repo> [tag]         pull one image over the Registry V2 HTTP API
  tags <repo>               list a repository's tags over HTTP
  serve                     start a registry HTTP server (runs until ^C)
  cache-sim                 replay a popularity trace against LRU/LFU/GDSF
  carve                     run perfect-layer carving over the hub
  store                     ingest the hub into the file-dedup store
  work                      run the study through the durable job queue
                            with a fleet of lease-holding workers
                            (requires --store-dir; resumes a killed run)
  query <dir> [question]    answer study questions from a persisted store
                            (questions: summary | dedup | top-types |
                            layer-percentiles); a mid-ingest store with
                            no study tables yet is answered from its
                            replayed layer recipes

OPTIONS (all commands):
  --repos N                 repositories to generate   [default 120]
  --seed N                  generator seed             [default 42]
  --scale N                 size divisor (1/N)         [default 128]
  --threads N               worker threads             [default: cores]

WORKER FLEET (work):
  --workers N               concurrent lease-holding workers [default: cores]
                            1 worker and N workers produce byte-identical
                            stores and query answers; a killed fleet is
                            resumed by rerunning the same command
  --max-commits N           kill the whole fleet after N commits (crash
                            harness; rerun the same command to resume)

FAULT INJECTION (report, summary, pull, tags, serve, cache-sim, carve, store,
work — `work` additionally injects lease-loss faults, i.e. workers dying
right after claiming a job):
  --fault-rate F            per-operation fault probability 0..1 [default 0]
  --fault-seed N            fault-plan seed (replayable)         [default 0]
  --max-retries N           retry budget per operation           [default 4]

MIRROR MODE (serve):
  --mirror-of A,B,...       serve as a pull-through mirror of the given
                            origin registries (comma-separated addresses)
                            instead of a local hub
  --cache-bytes N           mirror cache byte budget     [default 64 MiB]
  --cache-policy P          lru | lfu | gdsf             [default lru]

PERSISTENCE (summary, store, work):
  --store-dir DIR           open (or create) a crash-safe on-disk store at
                            DIR, ingest into it durably, and write the
                            queryable study tables under DIR/db. A partly
                            filled store is resumed, not re-ingested.
                            --fault-rate also injects crashes into these
                            durable writes (torn/bit-flipped temp files),
                            which are retried under --max-retries.

OBSERVABILITY (report, summary, pull, tags, cache-sim, carve, store):
  --metrics                 print Prometheus-style exposition when done,
                            and a periodic progress line on stderr
  --metrics-snapshot PATH   write the final metrics snapshot as JSON
";

fn config(args: &Parsed) -> Result<SynthConfig, crate::ArgError> {
    let mut cfg = SynthConfig::default_scale(args.num("seed", 42u64)?)
        .with_repos(args.num("repos", 120usize)?);
    cfg.size_scale = args.num("scale", 128u64)?;
    Ok(cfg)
}

fn hub_for(args: &Parsed, out: &mut impl Write) -> Result<SyntheticHub, crate::ArgError> {
    let cfg = config(args)?;
    writeln!(out, "generating hub: repos={} seed={} scale=1/{}", cfg.repos, cfg.seed, cfg.size_scale)
        .ok();
    Ok(generate_hub(&cfg))
}

fn threads(args: &Parsed) -> Result<usize, crate::ArgError> {
    args.num("threads", dhub_par::default_threads())
}

/// Parses the fault-injection flags: an injector (when `--fault-rate` is
/// nonzero) and the retry policy.
fn fault_setup(
    args: &Parsed,
) -> Result<(Option<Arc<FaultInjector>>, RetryPolicy), crate::ArgError> {
    let rate = args.num("fault-rate", 0.0f64)?;
    let seed = args.num("fault-seed", 0u64)?;
    let policy = RetryPolicy::new(args.num("max-retries", 4u32)?).with_seed(seed);
    let injector = (rate > 0.0)
        .then(|| Arc::new(FaultInjector::new(FaultConfig::uniform(seed, rate))));
    Ok((injector, policy))
}

/// Metric keys the `--metrics` progress line tracks during a study.
const PROGRESS_KEYS: &[&str] = &[
    "dhub_crawl_pages_fetched_total",
    "dhub_download_images_ok_total",
    "dhub_download_bytes_total",
    "dhub_download_retries_total",
    "dhub_analyze_layers_total",
];

/// Starts the `--metrics` progress reporter (stderr, only on change).
fn progress_for(args: &Parsed, obs: &Arc<MetricsRegistry>) -> Option<ProgressReporter> {
    args.flag("metrics").then(|| {
        let keys = PROGRESS_KEYS.iter().map(|k| k.to_string()).collect();
        ProgressReporter::start(obs.clone(), Duration::from_millis(500), keys)
    })
}

/// Honors `--metrics` (print the exposition) and `--metrics-snapshot PATH`
/// (write the JSON snapshot). Call once, at the end of a command.
fn emit_metrics(
    args: &Parsed,
    obs: &MetricsRegistry,
    out: &mut impl Write,
) -> Result<(), Box<dyn std::error::Error>> {
    if args.flag("metrics") {
        write!(out, "{}", render_prometheus(obs))?;
    }
    let path = args.str("metrics-snapshot", "");
    if !path.is_empty() {
        std::fs::write(&path, obs.snapshot().to_json().to_string())?;
        writeln!(out, "metrics snapshot written to {path}")?;
    }
    Ok(())
}

/// Builds the hub, attaches the fault injector (if requested), and runs
/// the study pipeline under the configured retry policy. The returned
/// registry holds the run's metrics; commands pass it to [`emit_metrics`]
/// once their own post-study work (store ingest, …) has been recorded.
fn study_for(
    args: &Parsed,
    out: &mut impl Write,
) -> Result<(SyntheticHub, StudyData, Arc<MetricsRegistry>), Box<dyn std::error::Error>> {
    study_for_with(args, out, |hub, threads, policy, obs| run_study_obs(hub, threads, policy, obs))
}

/// [`study_for`] with a pluggable pipeline runner, for commands that swap
/// the analysis stage (e.g. `store` runs the fused analyze+ingest). The
/// fault-injection setup, progress reporting, and injector teardown stay
/// identical across runners.
fn study_for_with(
    args: &Parsed,
    out: &mut impl Write,
    runner: impl FnOnce(&SyntheticHub, usize, &RetryPolicy, &Arc<MetricsRegistry>) -> StudyData,
) -> Result<(SyntheticHub, StudyData, Arc<MetricsRegistry>), Box<dyn std::error::Error>> {
    let hub = hub_for(args, out)?;
    let (injector, policy) = fault_setup(args)?;
    if let Some(inj) = &injector {
        let cfg = inj.plan().config();
        writeln!(out, "fault injection: rate={} seed={} max-retries={}",
            cfg.rate(dhub_faults::FaultOp::Manifest), cfg.seed, policy.max_retries)?;
        hub.registry.set_fault_injector(Some(inj.clone()));
    }
    let obs = Arc::new(MetricsRegistry::new());
    let reporter = progress_for(args, &obs);
    let data = runner(&hub, threads(args)?, &policy, &obs);
    if let Some(r) = reporter {
        r.stop();
    }
    if let Some(inj) = &injector {
        // The study is over: detach the injector so post-study consumers
        // (version analysis, …) read the registry clean instead of
        // re-experiencing transient faults or damaged bytes.
        hub.registry.set_fault_injector(None);
        writeln!(out, "faults fired: {}", inj.stats().total())?;
    }
    Ok((hub, data, obs))
}

/// Runs the study pipeline through the **durable** store at `store_dir`:
/// opens (or resumes) the crash-safe store, ingests every layer through
/// `dhub-persist`'s faultable publish path, then writes the queryable
/// study tables under `<store_dir>/db`, checkpoints the refcount
/// manifest, and sweeps crash orphans. The same `--fault-rate` injector
/// that hits the registry also crashes durable writes (as a separate
/// deterministic instance, so wire faults and write crashes replay
/// independently).
fn persistent_study_for(
    args: &Parsed,
    out: &mut impl Write,
    store_dir: &str,
) -> Result<
    (dhub_study::pipeline::StudyData, dhub_dedupstore::StoreStats, Arc<MetricsRegistry>),
    Box<dyn std::error::Error>,
> {
    use dhub_dedupstore::PersistentDedupStore;
    use dhub_persist::{Publisher, WriteFaults};

    let hub = hub_for(args, out)?;
    let (injector, policy) = fault_setup(args)?;
    if let Some(inj) = &injector {
        let cfg = inj.plan().config();
        writeln!(out, "fault injection: rate={} seed={} max-retries={}",
            cfg.rate(dhub_faults::FaultOp::Manifest), cfg.seed, policy.max_retries)?;
        hub.registry.set_fault_injector(Some(inj.clone()));
    }
    let obs = Arc::new(MetricsRegistry::new());
    let reporter = progress_for(args, &obs);

    // Durable writes share the fault flags but use their own injector
    // instance: per-op attempt streams stay deterministic regardless of
    // how registry traffic interleaves with disk writes.
    let write_faults = injector.as_ref().map(|inj| WriteFaults {
        injector: Arc::new(FaultInjector::new(inj.plan().config().clone())),
        policy,
    });
    let publisher = Publisher::new().with_metrics(&obs).with_faults(write_faults);
    let store = PersistentDedupStore::open_obs(store_dir, publisher.clone(), Some(&obs))?;
    let resumed = store.mem().stats().layers;
    if resumed > 0 {
        writeln!(out, "resuming store with {resumed} layers already ingested")?;
    }

    let data =
        dhub_study::pipeline::run_study_persist_obs(&hub, threads(args)?, &policy, &store, &obs);
    if let Some(r) = reporter {
        r.stop();
    }
    if let Some(inj) = &injector {
        hub.registry.set_fault_injector(None);
        writeln!(out, "faults fired: {}", inj.stats().total())?;
    }

    let db = dhub_study::db::StudyDb::build(&data, &store.mem().stats());
    db.save(&std::path::Path::new(store_dir).join("db"), &publisher)?;
    store.checkpoint()?;
    let swept = store.gc()?;
    if swept.objects + swept.tmp_files > 0 {
        writeln!(out, "gc: {} orphan objects, {} temp files swept", swept.objects, swept.tmp_files)?;
    }
    let stats = store.mem().stats();
    Ok((data, stats, obs))
}

/// Dispatches a parsed command. Returns a process exit code.
pub fn run(args: &Parsed, out: &mut impl Write) -> i32 {
    let result = match args.command.as_str() {
        "help" | "--help" | "-h" => {
            let _ = write!(out, "{USAGE}");
            Ok(())
        }
        "generate" => cmd_generate(args, out),
        "report" => cmd_report(args, out),
        "summary" => cmd_summary(args, out),
        "pull" => cmd_pull(args, out),
        "tags" => cmd_tags(args, out),
        "serve" => cmd_serve(args, out),
        "cache-sim" => cmd_cache_sim(args, out),
        "carve" => cmd_carve(args, out),
        "store" => cmd_store(args, out),
        "work" => cmd_work(args, out),
        "query" => cmd_query(args, out),
        other => {
            let _ = writeln!(out, "unknown command {other:?}\n\n{USAGE}");
            return 2;
        }
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_generate(args: &Parsed, out: &mut impl Write) -> CmdResult {
    let hub = hub_for(args, out)?;
    let stats = hub.registry.stats();
    writeln!(out, "repositories : {}", stats.repositories)?;
    writeln!(out, "unique blobs : {}", stats.unique_blobs)?;
    writeln!(out, "stored bytes : {}", stats.stored_bytes)?;
    writeln!(out, "images pushed: {}", hub.truth.images_pushed)?;
    writeln!(out, "ok / auth / no-latest: {} / {} / {}",
        hub.truth.ok_repos.len(), hub.truth.auth_repos.len(), hub.truth.no_latest_repos.len())?;
    Ok(())
}

fn cmd_report(args: &Parsed, out: &mut impl Write) -> CmdResult {
    let (hub, data, obs) = study_for(args, out)?;
    for fig in figures::all_figures(&data) {
        writeln!(out, "{}", fig.render())?;
    }
    let repos = hub.registry.repo_names();
    let versions = dhub_study::versions::analyze_versions(&hub.registry, &repos);
    writeln!(out, "{}", dhub_study::versions::ext_v1(&versions, hub.config.size_scale).render())?;
    writeln!(out, "{}", dhub_study::latency::ext_l1(&data).render())?;
    writeln!(out, "{}", dhub_study::carving::ext_c1(&data).render())?;
    emit_metrics(args, &obs, out)
}

fn cmd_summary(args: &Parsed, out: &mut impl Write) -> CmdResult {
    let store_dir = args.str("store-dir", "");
    let (data, obs) = if store_dir.is_empty() {
        let (_hub, data, obs) = study_for(args, out)?;
        (data, obs)
    } else {
        let (data, _stats, obs) = persistent_study_for(args, out, &store_dir)?;
        (data, obs)
    };
    writeln!(out, "{}", figures::table1(&data).render())?;
    writeln!(out, "{}", figures::table2(&data).render())?;
    emit_metrics(args, &obs, out)
}

fn cmd_pull(args: &Parsed, out: &mut impl Write) -> CmdResult {
    let repo_name = args.pos(0).ok_or("usage: dhub pull <repo> [tag]")?;
    let tag = args.pos(1).unwrap_or("latest");
    let repo = RepoName::parse(repo_name).ok_or("bad repository name")?;
    let hub = hub_for(args, out)?;
    let (injector, policy) = fault_setup(args)?;

    // Pull over the real HTTP wire, like the paper's downloader. The obs
    // registry is shared with the server, so `--metrics` shows the wire
    // counters (`dhub_http_*`) the pull generated.
    let obs = Arc::new(MetricsRegistry::new());
    let server =
        dhub_registry::RegistryServer::start_full(hub.registry.clone(), injector, obs.clone(), dhub_registry::DEFAULT_MAX_CONNS)?;
    let client = dhub_registry::RemoteRegistry::connect(server.addr()).with_retry_policy(policy);
    let (digest, manifest) = client.get_manifest(&repo, tag)?;
    writeln!(out, "manifest {digest} ({} layers)", manifest.layers.len())?;
    let mut total = 0u64;
    for l in &manifest.layers {
        let blob = client.get_blob(&repo, &l.digest)?;
        total += blob.len() as u64;
        writeln!(out, "  layer {} : {} bytes", l.digest, blob.len())?;
    }
    writeln!(out, "pulled {} bytes over HTTP", total)?;
    let stats = client.retry_stats();
    if stats.retries > 0 || stats.corrupt_retries > 0 {
        writeln!(
            out,
            "retried {} transient faults ({} digest-verify refetches)",
            stats.retries, stats.corrupt_retries
        )?;
    }
    server.shutdown();
    emit_metrics(args, &obs, out)
}

fn cmd_tags(args: &Parsed, out: &mut impl Write) -> CmdResult {
    let repo_name = args.pos(0).ok_or("usage: dhub tags <repo>")?;
    let repo = RepoName::parse(repo_name).ok_or("bad repository name")?;
    let hub = hub_for(args, out)?;
    let (injector, policy) = fault_setup(args)?;
    let obs = Arc::new(MetricsRegistry::new());
    let server =
        dhub_registry::RegistryServer::start_full(hub.registry.clone(), injector, obs.clone(), dhub_registry::DEFAULT_MAX_CONNS)?;
    let client = dhub_registry::RemoteRegistry::connect(server.addr()).with_retry_policy(policy);
    for tag in client.tags(&repo)? {
        writeln!(out, "{tag}")?;
    }
    server.shutdown();
    emit_metrics(args, &obs, out)
}

fn cmd_serve(args: &Parsed, out: &mut impl Write) -> CmdResult {
    let mirror_of = args.str("mirror-of", "");
    let server = if mirror_of.is_empty() {
        // Direct origin mode; --fault-rate makes it a flaky upstream worth
        // putting a mirror in front of.
        let hub = hub_for(args, out)?;
        let (injector, _) = fault_setup(args)?;
        dhub_registry::RegistryServer::start_with_faults(hub.registry.clone(), injector)?
    } else {
        // Pull-through mirror mode: no local hub, every object comes from
        // the comma-separated origin shards (DESIGN.md §6e).
        let mut origins = Vec::new();
        for part in mirror_of.split(',') {
            let addr: std::net::SocketAddr = part.trim().parse().map_err(|_| {
                crate::ArgError::BadValue { key: "mirror-of".into(), value: part.trim().into() }
            })?;
            origins.push(addr);
        }
        let policy_name = args.str("cache-policy", "lru");
        let policy = dhub_mirror::PolicyKind::parse(&policy_name).ok_or_else(|| {
            crate::ArgError::BadValue { key: "cache-policy".into(), value: policy_name.clone() }
        })?;
        let cache_bytes = args.num("cache-bytes", 64u64 << 20)?;
        let obs = Arc::new(MetricsRegistry::new());
        let mirror = Arc::new(dhub_mirror::Mirror::new(
            &origins,
            dhub_mirror::MirrorConfig::new(cache_bytes, policy),
            obs.clone(),
        ));
        let server = dhub_registry::RegistryServer::start_mirror(
            mirror,
            obs,
            dhub_registry::DEFAULT_MAX_CONNS,
        )?;
        writeln!(
            out,
            "mirror ({} cache, {} MiB) fronting {mirror_of}",
            policy.name(),
            cache_bytes >> 20
        )?;
        server
    };
    writeln!(out, "registry listening on http://{}", server.addr())?;
    writeln!(out, "try: curl http://{}/v2/nginx/tags/list", server.addr())?;
    // Serve until interrupted.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_cache_sim(args: &Parsed, out: &mut impl Write) -> CmdResult {
    use dhub_cache::{simulate, Fifo, GreedyDualSizeFrequency, Lfu, Lru, PullTrace, TraceConfig};
    let (_hub, data, obs) = study_for(args, out)?;
    let objects: Vec<(u64, f64, u64)> = data
        .images
        .iter()
        .enumerate()
        .map(|(i, img)| {
            let pulls =
                data.pulls.iter().find(|(r, _)| r == &img.repo).map(|(_, c)| *c).unwrap_or(0);
            (i as u64, (pulls + 1) as f64, img.cis.max(1))
        })
        .collect();
    let total: u64 = objects.iter().map(|&(_, _, s)| s).sum();
    let requests = args.num("requests", 100_000usize)?;
    let trace = PullTrace::from_popularity(&objects, &TraceConfig { seed: 1, requests });
    writeln!(out, "{:>12} {:>16} {:>16} {:>16} {:>16}", "cache", "LRU", "LFU", "FIFO", "GDSF")?;
    for frac in [0.02, 0.05, 0.10] {
        let cap = ((total as f64 * frac) as u64).max(1);
        let r = [
            simulate(&mut Lru::new(cap), &trace).hit_ratio(),
            simulate(&mut Lfu::new(cap), &trace).hit_ratio(),
            simulate(&mut Fifo::new(cap), &trace).hit_ratio(),
            simulate(&mut GreedyDualSizeFrequency::new(cap), &trace).hit_ratio(),
        ];
        writeln!(
            out,
            "{:>10.0}% {:>15.1}% {:>15.1}% {:>15.1}% {:>15.1}%",
            frac * 100.0,
            r[0] * 100.0,
            r[1] * 100.0,
            r[2] * 100.0,
            r[3] * 100.0
        )?;
    }
    emit_metrics(args, &obs, out)
}

fn cmd_carve(args: &Parsed, out: &mut impl Write) -> CmdResult {
    let (_hub, data, obs) = study_for(args, out)?;
    writeln!(out, "{}", dhub_study::carving::ext_c1(&data).render())?;
    emit_metrics(args, &obs, out)
}

fn cmd_store(args: &Parsed, out: &mut impl Write) -> CmdResult {
    use dhub_dedupstore::DedupStore;
    // The fused pipeline profiles and ingests each downloaded layer in a
    // single decompression/hash pass — the store fills during the study
    // instead of re-reading every blob afterwards. Downloaded blobs are
    // digest-verified, so fault injection never skews the dedup stats.
    let store_dir = args.str("store-dir", "");
    let (st, obs) = if store_dir.is_empty() {
        let mut store_slot: Option<DedupStore> = None;
        let (_hub, _data, obs) = study_for_with(args, out, |hub, threads, policy, obs| {
            let store = DedupStore::with_metrics(obs);
            let data = dhub_study::pipeline::run_study_store_obs(hub, threads, policy, &store, obs);
            store_slot = Some(store);
            data
        })?;
        (store_slot.expect("runner always fills the slot").stats(), obs)
    } else {
        // Durable mode: same fused pipeline, but every object and layer
        // recipe survives the process in <store-dir>, with the queryable
        // study tables under <store-dir>/db (see `dhub query`).
        let (_data, stats, obs) = persistent_study_for(args, out, &store_dir)?;
        writeln!(out, "store dir       : {store_dir}")?;
        (stats, obs)
    };
    writeln!(out, "layers          : {}", st.layers)?;
    writeln!(out, "unique objects  : {}", st.unique_objects)?;
    writeln!(out, "logical bytes   : {}", st.logical_bytes)?;
    writeln!(out, "physical bytes  : {}", st.physical_bytes)?;
    writeln!(out, "dedup factor    : {:.2}x", st.dedup_factor())?;
    emit_metrics(args, &obs, out)
}

/// Runs the full study through the durable job queue at
/// `<store-dir>/queue` with `--workers` lease-holding workers, each
/// ingesting into the shared crash-safe store. The queue and the store
/// both resume: rerunning after a kill (or a quarantine) drains only the
/// jobs that never committed a result, and the finished study tables are
/// byte-identical to a single-worker (or plain `store --store-dir`) run.
fn cmd_work(args: &Parsed, out: &mut impl Write) -> CmdResult {
    use dhub_dedupstore::PersistentDedupStore;
    use dhub_persist::{Publisher, WriteFaults};
    use dhub_queue::DurableQueue;
    use dhub_study::distributed::{run_study_queued_obs, QueuedStudyConfig};

    let store_dir = args.str("store-dir", "");
    if store_dir.is_empty() {
        return Err("usage: dhub work --store-dir DIR [--workers N]".into());
    }
    let workers = args.num("workers", dhub_par::default_threads())?;
    let hub = hub_for(args, out)?;
    let (injector, policy) = fault_setup(args)?;
    if let Some(inj) = &injector {
        let cfg = inj.plan().config();
        writeln!(out, "fault injection: rate={} seed={} max-retries={}",
            cfg.rate(dhub_faults::FaultOp::Manifest), cfg.seed, policy.max_retries)?;
        hub.registry.set_fault_injector(Some(inj.clone()));
    }
    let obs = Arc::new(MetricsRegistry::new());
    let reporter = progress_for(args, &obs);

    // As in `persistent_study_for`: durable writes and lease-loss faults
    // each get their own injector instance over the same plan, so every
    // fault stream replays deterministically no matter how N workers
    // interleave registry traffic, disk writes, and claims.
    let write_faults = injector.as_ref().map(|inj| WriteFaults {
        injector: Arc::new(FaultInjector::new(inj.plan().config().clone())),
        policy,
    });
    let lease_faults = injector
        .as_ref()
        .map(|inj| Arc::new(FaultInjector::new(inj.plan().config().clone())));
    let publisher = Publisher::new().with_metrics(&obs).with_faults(write_faults);
    let store = PersistentDedupStore::open_obs(&store_dir, publisher.clone(), Some(&obs))?;
    let resumed = store.mem().stats().layers;
    if resumed > 0 {
        writeln!(out, "resuming store with {resumed} layers already ingested")?;
    }
    let queue =
        DurableQueue::open(std::path::Path::new(&store_dir).join("queue"), publisher.clone())?
            .with_metrics(&obs);
    writeln!(out, "worker fleet: {workers} worker(s) on {store_dir}/queue")?;

    let max_commits = args.num("max-commits", 0)?;
    let qcfg = QueuedStudyConfig {
        workers,
        policy,
        lease_faults,
        max_commits: (max_commits > 0).then(|| max_commits as u64),
        ..QueuedStudyConfig::default()
    };
    let data = run_study_queued_obs(&hub, &store, &queue, &qcfg, &obs);
    if let Some(r) = reporter {
        r.stop();
    }
    if let Some(inj) = &injector {
        hub.registry.set_fault_injector(None);
        writeln!(out, "faults fired: {}", inj.stats().total())?;
    }
    let data = match data {
        // A deliberate --max-commits kill is the crash harness working as
        // intended, not a failure: report and leave the durable state for
        // the resuming run.
        Err(dhub_queue::QueueError::Killed) => {
            writeln!(
                out,
                "fleet killed after {} commits (rerun the same command to resume)",
                obs.counter_value("dhub_queue_jobs_completed_total")
            )?;
            return Ok(());
        }
        other => other?,
    };

    let db = dhub_study::db::StudyDb::build(&data, &store.mem().stats());
    db.save(&std::path::Path::new(&store_dir).join("db"), &publisher)?;
    store.checkpoint()?;
    let swept = store.gc()?;
    if swept.objects + swept.tmp_files > 0 {
        writeln!(out, "gc: {} orphan objects, {} temp files swept", swept.objects, swept.tmp_files)?;
    }
    writeln!(out, "jobs committed  : {}", obs.counter_value("dhub_queue_jobs_completed_total"))?;
    writeln!(out, "lease expiries  : {}", obs.counter_value("dhub_queue_lease_expiries_total"))?;
    let st = store.mem().stats();
    writeln!(out, "store dir       : {store_dir}")?;
    writeln!(out, "layers          : {}", st.layers)?;
    writeln!(out, "unique objects  : {}", st.unique_objects)?;
    writeln!(out, "logical bytes   : {}", st.logical_bytes)?;
    writeln!(out, "physical bytes  : {}", st.physical_bytes)?;
    writeln!(out, "dedup factor    : {:.2}x", st.dedup_factor())?;
    emit_metrics(args, &obs, out)
}

/// Answers Table-1-style questions from a persisted store's study
/// database — no hub generation, no re-analysis, just `<dir>/db` reads.
/// A store whose study tables are not written yet (a fleet still
/// mid-ingest, or killed before its checkpoint) falls back to replaying
/// the durable layer recipes.
fn cmd_query(args: &Parsed, out: &mut impl Write) -> CmdResult {
    use dhub_study::db::StudyDb;
    let dir = args
        .pos(0)
        .ok_or("usage: dhub query <store-dir> [summary|dedup|top-types|layer-percentiles]")?;
    let question = args.pos(1).unwrap_or("summary");
    let db = match StudyDb::load(&std::path::Path::new(dir).join("db")) {
        Ok(db) => db,
        Err(e) => {
            // Mid-ingest store: no tables, but recipes are durable.
            if std::path::Path::new(dir).join("layers").is_dir() {
                return query_replayed(args, out, dir, question);
            }
            return Err(e.into());
        }
    };
    match question {
        "summary" => {
            for row in db.summary() {
                writeln!(out, "{row}")?;
            }
        }
        "dedup" => {
            for row in db.dedup_summary() {
                writeln!(out, "{row}")?;
            }
        }
        "top-types" => {
            let n = args.num("top", 10usize)?;
            writeln!(out, "{:<12} {:>10} {:>14}", "type", "files", "bytes")?;
            for (label, count, bytes) in db.top_file_types(n) {
                writeln!(out, "{label:<12} {count:>10} {bytes:>14}")?;
            }
        }
        "layer-percentiles" => {
            writeln!(out, "{:<4} {:>14}", "pct", "layer bytes")?;
            for (p, v) in db.layer_size_percentiles() {
                writeln!(out, "{p:<4} {v:>14}")?;
            }
        }
        other => {
            return Err(format!(
                "unknown question {other:?} (try summary, dedup, top-types, layer-percentiles)"
            )
            .into())
        }
    }
    Ok(())
}

/// `dhub query` over a store directory with no `db/` tables yet: replays
/// the published layer recipes into memory and answers the store-shaped
/// questions from them, in the same output format the tables would use.
/// Crawl-derived Table-1 counters exist only in the finished tables, so
/// `summary` degrades to the dedup block with a notice.
fn query_replayed(args: &Parsed, out: &mut impl Write, dir: &str, question: &str) -> CmdResult {
    use dhub_dedupstore::{PersistentDedupStore, RecipeEntryKind};
    use dhub_persist::Publisher;

    let store = PersistentDedupStore::open(dir, Publisher::new())?;
    let mem = store.mem();
    let st = mem.stats();
    writeln!(out, "no study tables under {dir}/db yet; replaying {} durable layer recipes", st.layers)?;
    match question {
        "summary" | "dedup" => {
            writeln!(out, "{:20}: {}", "layers", st.layers)?;
            writeln!(out, "{:20}: {}", "unique objects", st.unique_objects)?;
            writeln!(out, "{:20}: {}", "physical bytes", st.physical_bytes)?;
            writeln!(out, "{:20}: {}", "logical bytes", st.logical_bytes)?;
            writeln!(out, "{:20}: {}", "conventional bytes", st.conventional_bytes)?;
            writeln!(out, "{:20}: {:.6}x", "dedup factor", st.dedup_factor())?;
        }
        "top-types" => {
            // Re-derive (kind, size) per file entry exactly as the
            // analyzer recorded it: `dhub_magic::classify` over the entry
            // path and the stored object bytes.
            let n = args.num("top", 10usize)?;
            let mut digests = mem.layer_digests();
            digests.sort();
            let mut agg: std::collections::BTreeMap<String, (u64, u64)> = Default::default();
            for d in &digests {
                let recipe = mem.recipe(d).expect("replayed layer has a recipe");
                for entry in &recipe.entries {
                    if let RecipeEntryKind::File(fd) = &entry.kind {
                        let data =
                            mem.object_data(fd).ok_or_else(|| format!("missing object {fd}"))?;
                        let kind = dhub_magic::classify(&entry.path, &data);
                        let e = agg.entry(kind.label().to_string()).or_insert((0, 0));
                        e.0 += 1;
                        e.1 += data.len() as u64;
                    }
                }
            }
            let mut rows: Vec<(String, u64, u64)> =
                agg.into_iter().map(|(k, (c, b))| (k, c, b)).collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            rows.truncate(n);
            writeln!(out, "{:<12} {:>10} {:>14}", "type", "files", "bytes")?;
            for (label, count, bytes) in rows {
                writeln!(out, "{label:<12} {count:>10} {bytes:>14}")?;
            }
        }
        "layer-percentiles" => {
            let mut cls: Vec<u64> = mem.layer_sizes().into_iter().map(|(_, c)| c).collect();
            cls.sort_unstable();
            let pick = |p: f64| -> u64 {
                if cls.is_empty() {
                    return 0;
                }
                let rank = ((p / 100.0) * cls.len() as f64).ceil() as usize;
                cls[rank.clamp(1, cls.len()) - 1]
            };
            writeln!(out, "{:<4} {:>14}", "pct", "layer bytes")?;
            for (p, v) in
                [("p10", 10.0), ("p25", 25.0), ("p50", 50.0), ("p75", 75.0), ("p90", 90.0), ("p99", 99.0)]
            {
                writeln!(out, "{p:<4} {:>14}", pick(v))?;
            }
        }
        other => {
            return Err(format!(
                "unknown question {other:?} (try summary, dedup, top-types, layer-percentiles)"
            )
            .into())
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Parsed;

    fn run_cmd(argv: &[&str]) -> (i32, String) {
        let parsed = Parsed::parse(argv.iter().map(|s| s.to_string())).unwrap();
        let mut out = Vec::new();
        let code = run(&parsed, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_cmd(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        assert!(out.contains("cache-sim"));
    }

    #[test]
    fn unknown_command_fails() {
        let (code, out) = run_cmd(&["frobnicate"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn generate_summarizes_hub() {
        let (code, out) = run_cmd(&["generate", "--repos", "20", "--seed", "3", "--scale", "1024"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("repositories : 20"), "{out}");
        assert!(out.contains("unique blobs"));
    }

    #[test]
    fn pull_over_http_works() {
        let (code, out) =
            run_cmd(&["pull", "nginx", "--repos", "20", "--seed", "3", "--scale", "1024"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("pulled"), "{out}");
        assert!(out.contains("layers)"), "{out}");
    }

    #[test]
    fn pull_missing_repo_fails_cleanly() {
        let (code, out) =
            run_cmd(&["pull", "ghost/none", "--repos", "10", "--seed", "3", "--scale", "1024"]);
        assert_eq!(code, 1);
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn tags_lists_versions() {
        let (code, out) = run_cmd(&["tags", "nginx", "--repos", "20", "--seed", "3", "--scale", "1024"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("latest"), "{out}");
    }

    #[test]
    fn summary_prints_tables() {
        let (code, out) =
            run_cmd(&["summary", "--repos", "25", "--seed", "5", "--scale", "1024", "--threads", "2"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Table 1"), "{out}");
        assert!(out.contains("Table 2"), "{out}");
        assert!(out.contains("count dedup ratio"));
    }

    #[test]
    fn pull_survives_fault_injection() {
        let (code, out) = run_cmd(&[
            "pull", "nginx", "--repos", "20", "--seed", "3", "--scale", "1024",
            "--fault-rate", "0.4", "--fault-seed", "7", "--max-retries", "16",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("pulled"), "{out}");
    }

    #[test]
    fn summary_reports_fault_injection() {
        let (code, out) = run_cmd(&[
            "summary", "--repos", "25", "--seed", "5", "--scale", "1024", "--threads", "2",
            "--fault-rate", "0.2", "--fault-seed", "7", "--max-retries", "16",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("fault injection: rate=0.2 seed=7 max-retries=16"), "{out}");
        assert!(out.contains("faults fired:"), "{out}");
        assert!(out.contains("transient retries"), "{out}");
    }

    #[test]
    fn fault_free_run_mentions_no_injection() {
        let (code, out) =
            run_cmd(&["summary", "--repos", "20", "--seed", "5", "--scale", "1024", "--threads", "2"]);
        assert_eq!(code, 0, "{out}");
        assert!(!out.contains("fault injection"), "{out}");
    }

    #[test]
    fn store_under_faults_matches_clean_ingest() {
        // The injector is detached once the study finishes, so the store
        // ingest re-reads every layer clean: no panic on transient faults,
        // no corrupted bytes skewing the dedup stats.
        let base = ["store", "--repos", "20", "--seed", "5", "--scale", "1024", "--threads", "2"];
        let (code, clean) = run_cmd(&base);
        assert_eq!(code, 0, "{clean}");
        let mut argv = base.to_vec();
        argv.extend(["--fault-rate", "0.3", "--fault-seed", "7", "--max-retries", "16"]);
        let (code, faulty) = run_cmd(&argv);
        assert_eq!(code, 0, "{faulty}");
        assert!(faulty.contains("faults fired:"), "{faulty}");
        let stats = |s: &str| s.lines().rev().take(5).map(String::from).collect::<Vec<_>>();
        assert_eq!(stats(&faulty), stats(&clean), "dedup stats diverged under faults");
    }

    #[test]
    fn summary_with_metrics_prints_exposition() {
        let (code, out) = run_cmd(&[
            "summary", "--repos", "20", "--seed", "5", "--scale", "1024", "--threads", "2",
            "--metrics",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("# TYPE dhub_crawl_pages_fetched_total counter"), "{out}");
        assert!(out.contains("dhub_download_images_ok_total"), "{out}");
        assert!(out.contains("dhub_span_id_digest"), "{out}");
    }

    #[test]
    fn metrics_snapshot_reconciles_with_table1() {
        let dir = std::env::temp_dir().join(format!("dhub-cli-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let (code, out) = run_cmd(&[
            "summary", "--repos", "25", "--seed", "5", "--scale", "1024", "--threads", "2",
            "--fault-rate", "0.1", "--fault-seed", "7", "--max-retries", "16",
            "--metrics-snapshot", path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("metrics snapshot written"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let json = dhub_json::parse(&text).unwrap();
        let snap = dhub_obs::MetricsSnapshot::from_json(&json).unwrap();
        // The printed Table 1 and the snapshot describe the same run.
        let table_line = |label: &str| -> u64 {
            out.lines()
                .find(|l| l.trim_start().starts_with(label))
                .and_then(|l| l.rsplit(':').next())
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or_else(|| panic!("missing table line {label:?} in {out}"))
        };
        assert_eq!(snap.counter("dhub_download_retries_total"), table_line("transient retries"));
        assert_eq!(snap.counter("dhub_crawl_raw_results_total"), table_line("search results (raw)"));
        assert_eq!(
            snap.counter("dhub_download_unique_layers_total"),
            table_line("unique compressed layers")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pull_with_metrics_shows_wire_counters() {
        let (code, out) = run_cmd(&[
            "pull", "nginx", "--repos", "20", "--seed", "3", "--scale", "1024", "--metrics",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("dhub_http_requests_total"), "{out}");
        assert!(out.contains("dhub_http_status_2xx_total"), "{out}");
    }

    #[test]
    fn bad_option_reports_error() {
        let (code, out) = run_cmd(&["generate", "--repos", "banana"]);
        assert_eq!(code, 1);
        assert!(out.contains("cannot parse"), "{out}");
    }

    /// The last five lines of `dhub store` — the dedup stats block.
    fn stat_lines(s: &str) -> Vec<String> {
        s.lines().rev().take(5).map(String::from).collect()
    }

    #[test]
    fn store_dir_persists_matches_memory_and_resumes() {
        let dir = std::env::temp_dir().join(format!("dhub-cli-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let base = ["store", "--repos", "20", "--seed", "5", "--scale", "1024", "--threads", "2"];
        let (code, mem) = run_cmd(&base);
        assert_eq!(code, 0, "{mem}");

        let mut argv = base.to_vec();
        argv.extend(["--store-dir", dir.to_str().unwrap()]);
        let (code, durable) = run_cmd(&argv);
        assert_eq!(code, 0, "{durable}");
        assert_eq!(stat_lines(&durable), stat_lines(&mem), "durable stats diverged from memory");

        // A second run over the same hub resumes the store instead of
        // re-ingesting, and lands on identical stats.
        let (code, resumed) = run_cmd(&argv);
        assert_eq!(code, 0, "{resumed}");
        assert!(resumed.contains("resuming store with"), "{resumed}");
        assert_eq!(stat_lines(&resumed), stat_lines(&mem));

        // The persisted database answers without a hub: the dedup factor
        // line printed by `store` appears verbatim in `query dedup`.
        let (code, q) = run_cmd(&["query", dir.to_str().unwrap(), "dedup"]);
        assert_eq!(code, 0, "{q}");
        let parse_factor = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.starts_with("dedup factor"))
                .and_then(|l| l.rsplit(':').next())
                .and_then(|v| v.trim().trim_end_matches('x').parse().ok())
                .unwrap_or_else(|| panic!("no dedup factor line in {s:?}"))
        };
        let printed = parse_factor(&mem);
        let queried = parse_factor(&q);
        assert!((printed - queried).abs() < 0.005, "store {printed} vs query {queried}");

        let (code, q) = run_cmd(&["query", dir.to_str().unwrap(), "top-types"]);
        assert_eq!(code, 0, "{q}");
        assert!(q.lines().count() > 2, "{q}");
        let (code, q) = run_cmd(&["query", dir.to_str().unwrap(), "layer-percentiles"]);
        assert_eq!(code, 0, "{q}");
        assert!(q.contains("p50"), "{q}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_dir_under_faults_matches_clean_run() {
        let pid = std::process::id();
        let clean_dir = std::env::temp_dir().join(format!("dhub-cli-pclean-{pid}"));
        let fault_dir = std::env::temp_dir().join(format!("dhub-cli-pfault-{pid}"));
        std::fs::remove_dir_all(&clean_dir).ok();
        std::fs::remove_dir_all(&fault_dir).ok();
        let base = ["store", "--repos", "20", "--seed", "5", "--scale", "1024", "--threads", "2"];
        let mut argv = base.to_vec();
        argv.extend(["--store-dir", clean_dir.to_str().unwrap()]);
        let (code, clean) = run_cmd(&argv);
        assert_eq!(code, 0, "{clean}");
        let mut argv = base.to_vec();
        argv.extend([
            "--store-dir", fault_dir.to_str().unwrap(),
            "--fault-rate", "0.2", "--fault-seed", "7", "--max-retries", "16",
        ]);
        let (code, faulty) = run_cmd(&argv);
        assert_eq!(code, 0, "{faulty}");
        assert_eq!(stat_lines(&faulty), stat_lines(&clean), "stats diverged under write faults");
        // The two stores answer queries identically, byte for byte.
        let (c1, q1) = run_cmd(&["query", clean_dir.to_str().unwrap(), "summary"]);
        let (c2, q2) = run_cmd(&["query", fault_dir.to_str().unwrap(), "summary"]);
        assert_eq!((c1, c2), (0, 0), "{q1}\n{q2}");
        assert_eq!(q1, q2, "query output diverged under write faults");
        std::fs::remove_dir_all(&clean_dir).ok();
        std::fs::remove_dir_all(&fault_dir).ok();
    }

    #[test]
    fn work_fleet_matches_store_and_resumes_queries() {
        let pid = std::process::id();
        let one_dir = std::env::temp_dir().join(format!("dhub-cli-work1-{pid}"));
        let four_dir = std::env::temp_dir().join(format!("dhub-cli-work4-{pid}"));
        let store_dir = std::env::temp_dir().join(format!("dhub-cli-works-{pid}"));
        for d in [&one_dir, &four_dir, &store_dir] {
            std::fs::remove_dir_all(d).ok();
        }
        let base = ["work", "--repos", "20", "--seed", "5", "--scale", "1024"];
        let mut argv = base.to_vec();
        argv.extend(["--store-dir", one_dir.to_str().unwrap(), "--workers", "1"]);
        let (code, one) = run_cmd(&argv);
        assert_eq!(code, 0, "{one}");
        let mut argv = base.to_vec();
        argv.extend(["--store-dir", four_dir.to_str().unwrap(), "--workers", "4"]);
        let (code, four) = run_cmd(&argv);
        assert_eq!(code, 0, "{four}");
        assert_eq!(stat_lines(&one), stat_lines(&four), "worker count changed the store");

        // The plain store pipeline lands on the same stats block…
        let (code, plain) = run_cmd(&[
            "store", "--repos", "20", "--seed", "5", "--scale", "1024", "--threads", "2",
            "--store-dir", store_dir.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{plain}");
        assert_eq!(stat_lines(&plain), stat_lines(&four), "queued run diverged from store");

        // …and every query answers byte-identically across worker counts.
        for q in ["summary", "dedup", "top-types", "layer-percentiles"] {
            let (c1, q1) = run_cmd(&["query", one_dir.to_str().unwrap(), q]);
            let (c4, q4) = run_cmd(&["query", four_dir.to_str().unwrap(), q]);
            assert_eq!((c1, c4), (0, 0), "{q1}\n{q4}");
            assert_eq!(q1, q4, "query {q} diverged across worker counts");
        }
        for d in [&one_dir, &four_dir, &store_dir] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn query_mid_ingest_store_answers_from_recipes() {
        // A store with durable recipes but no study tables (fleet killed
        // before the checkpoint) still answers store-shaped questions.
        let dir = std::env::temp_dir().join(format!("dhub-cli-midq-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (code, out) = run_cmd(&[
            "store", "--repos", "15", "--seed", "3", "--scale", "1024", "--threads", "2",
            "--store-dir", dir.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        let (_, full_dedup) = run_cmd(&["query", dir.to_str().unwrap(), "dedup"]);
        let (_, full_pcts) = run_cmd(&["query", dir.to_str().unwrap(), "layer-percentiles"]);
        let (_, full_types) = run_cmd(&["query", dir.to_str().unwrap(), "top-types"]);

        // Simulate the kill: tables gone, recipes still durable.
        std::fs::remove_dir_all(dir.join("db")).unwrap();
        let tail = |s: &str, n: usize| {
            let lines: Vec<&str> = s.lines().collect();
            lines[lines.len().saturating_sub(n)..].join("\n")
        };
        let (code, q) = run_cmd(&["query", dir.to_str().unwrap(), "dedup"]);
        assert_eq!(code, 0, "{q}");
        assert!(q.contains("no study tables"), "{q}");
        assert_eq!(tail(&q, 6), tail(&full_dedup, 6), "replayed dedup answers diverged");
        let (code, q) = run_cmd(&["query", dir.to_str().unwrap(), "layer-percentiles"]);
        assert_eq!(code, 0, "{q}");
        assert_eq!(tail(&q, 7), tail(&full_pcts, 7), "replayed percentiles diverged");
        let (code, q) = run_cmd(&["query", dir.to_str().unwrap(), "top-types"]);
        assert_eq!(code, 0, "{q}");
        assert_eq!(tail(&q, full_types.lines().count()), full_types.trim_end(),
            "replayed top-types diverged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_missing_store_fails_cleanly() {
        let (code, out) = run_cmd(&["query", "/nonexistent/dhub-store"]);
        assert_eq!(code, 1);
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn query_unknown_question_fails_cleanly() {
        let dir = std::env::temp_dir().join(format!("dhub-cli-qbad-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (code, out) = run_cmd(&[
            "store", "--repos", "10", "--seed", "3", "--scale", "1024", "--threads", "2",
            "--store-dir", dir.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        let (code, out) = run_cmd(&["query", dir.to_str().unwrap(), "flavor"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown question"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
