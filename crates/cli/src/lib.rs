//! Library side of the `dhub` CLI: a small, dependency-free argument
//! parser and the command implementations (kept in the library so they are
//! unit-testable; `main.rs` is a thin shim).

pub mod args;
pub mod commands;

pub use args::{ArgError, Parsed};
