//! `dhub` entry point — parse arguments and dispatch.

fn main() {
    let args = std::env::args().skip(1);
    match dhub_cli::Parsed::parse(args) {
        Ok(parsed) => {
            let mut out = std::io::stdout().lock();
            std::process::exit(dhub_cli::commands::run(&parsed, &mut out));
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", dhub_cli::commands::USAGE);
            std::process::exit(2);
        }
    }
}
