//! Property tests: carving invariants over random image/file incidences.

#![cfg(feature = "proptest")]

use dhub_carve::{carve, CarveConfig};
use dhub_digest::FxHashMap;
use dhub_model::{Digest, FileKind, FileRecord, LayerProfile};
use proptest::prelude::*;

/// Builds a random population: `n_images` images, each holding one layer
/// with files drawn from a universe of `universe` prototypes.
fn population(
    n_images: usize,
    universe: u32,
    picks: &[Vec<u32>],
) -> (Vec<Vec<Digest>>, FxHashMap<Digest, LayerProfile>) {
    let mut profiles = FxHashMap::default();
    let mut images = Vec::new();
    for (i, pick) in picks.iter().enumerate().take(n_images) {
        let files: Vec<FileRecord> = pick
            .iter()
            .map(|&p| {
                let p = p % universe.max(1);
                FileRecord {
                    path: format!("f{p}"),
                    digest: Digest::of(&p.to_le_bytes()),
                    kind: FileKind::AsciiText,
                    size: 10 + (p as u64 % 90),
                }
            })
            .collect();
        let lp = LayerProfile {
            digest: Digest::of(&(i as u64).to_le_bytes()),
            fls: files.iter().map(|f| f.size).sum(),
            cls: 1,
            dir_count: 1,
            file_count: files.len() as u64,
            max_depth: 1,
            files,
        };
        images.push(vec![lp.digest]);
        profiles.insert(lp.digest, lp);
    }
    (images, profiles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Perfect carving always stores exactly the unique-file bound, never
    /// more than the original layering, and covers every image exactly.
    #[test]
    fn perfect_carving_invariants(
        universe in 1u32..40,
        picks in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..30), 1..12),
    ) {
        let (images, profiles) = population(picks.len(), universe, &picks);
        let c = carve(&images, &profiles, &CarveConfig::default());
        prop_assert_eq!(c.stored_bytes, c.perfect_bytes);
        prop_assert!(c.stored_bytes <= c.original_bytes);
        prop_assert_eq!(c.duplicated_bytes(), 0);
        prop_assert!(c.saving_factor() >= 1.0);
        // Coverage: each image's unique file set equals the union of its groups.
        for (idx, layers) in images.iter().enumerate() {
            let mut want = std::collections::HashSet::new();
            for ld in layers {
                for f in &profiles[ld].files {
                    want.insert(f.digest);
                }
            }
            let mut got = std::collections::HashSet::new();
            for g in &c.groups {
                if g.images.contains(&(idx as u32)) {
                    got.extend(g.files.iter().copied());
                }
            }
            prop_assert_eq!(got, want);
        }
        // Groups partition the unique-file universe (no digest in two groups).
        let mut seen = std::collections::HashSet::new();
        for g in &c.groups {
            for f in &g.files {
                prop_assert!(seen.insert(*f), "digest in two groups");
            }
        }
    }

    /// Folding monotonicity: higher thresholds never increase shared-group
    /// count and never decrease stored bytes.
    #[test]
    fn fold_threshold_monotone(
        universe in 1u32..30,
        picks in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..20), 1..8),
    ) {
        let (images, profiles) = population(picks.len(), universe, &picks);
        let mut last_groups = usize::MAX;
        let mut last_bytes = 0u64;
        for t in [0u64, 50, 500, 5_000] {
            let c = carve(&images, &profiles, &CarveConfig { min_group_bytes: t });
            prop_assert!(c.groups.len() <= last_groups);
            prop_assert!(c.stored_bytes >= last_bytes);
            last_groups = c.groups.len();
            last_bytes = c.stored_bytes;
        }
    }
}
