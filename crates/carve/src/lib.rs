//! Layer carving: restructure images into shared "perfect" layers.
//!
//! The paper's related work cites Skourtis et al., *Carving perfect layers
//! out of Docker images* (HotCloud'19), as the way to exploit exactly the
//! redundancy it measures: files recur across images (§V-D), but because
//! each developer cuts layers differently, layer sharing misses most of
//! it. Carving regroups files by *which images contain them*:
//!
//! * every unique file has a **signature** — the set of images that
//!   contain it;
//! * files with the same signature form one **carved layer**, stored once
//!   and referenced by exactly those images;
//! * an image becomes the set of carved layers whose signatures include it.
//!
//! Perfect carving stores every unique file exactly once (the paper's
//! file-dedup bound) but can explode the number of layers an image
//! references, which hurts pull latency (§IV-B's layer-count concern). A
//! practical knob, `min_group_bytes`, folds tiny carved groups back into
//! per-image residual layers — trading some duplication for bounded layer
//! counts. [`carve`] computes the carving and both storage and layer-count
//! statistics so the trade-off can be swept (`bench_carve`).

use dhub_digest::{FxHashMap, FxHashSet};
use dhub_model::{Digest, LayerProfile};

/// Carving configuration.
#[derive(Clone, Copy, Debug)]
#[derive(Default)]
pub struct CarveConfig {
    /// Carved groups smaller than this many bytes are folded into the
    /// owning images' residual layers (0 = perfect carving).
    pub min_group_bytes: u64,
}


/// One carved layer: a set of unique files shared by a set of images.
#[derive(Clone, Debug)]
pub struct CarvedGroup {
    /// Images referencing this carved layer (indices into the input).
    pub images: Vec<u32>,
    /// Unique files in the group.
    pub files: Vec<Digest>,
    /// Total unique bytes.
    pub bytes: u64,
}

/// Result of a carving run.
#[derive(Clone, Debug)]
pub struct Carving {
    /// Shared carved layers (referenced by ≥ 1 image).
    pub groups: Vec<CarvedGroup>,
    /// Per-image residual bytes (files folded out of tiny groups are
    /// duplicated into each owning image's residual layer).
    pub residual_bytes: Vec<u64>,
    /// Per-image carved-layer counts (incl. the residual layer when
    /// non-empty).
    pub layers_per_image: Vec<u32>,
    /// Bytes stored under this carving (shared groups once + residuals).
    pub stored_bytes: u64,
    /// Bytes the original layering stores (unique original layers' FLS).
    pub original_bytes: u64,
    /// The file-dedup lower bound (every unique file once).
    pub perfect_bytes: u64,
}

impl Carving {
    /// Storage saving factor vs. the original layering.
    pub fn saving_factor(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.original_bytes as f64 / self.stored_bytes as f64
        }
    }

    /// Mean carved layers per image.
    pub fn mean_layers_per_image(&self) -> f64 {
        if self.layers_per_image.is_empty() {
            0.0
        } else {
            self.layers_per_image.iter().map(|&l| l as f64).sum::<f64>()
                / self.layers_per_image.len() as f64
        }
    }

    /// Bytes duplicated into residual layers beyond the perfect bound.
    pub fn duplicated_bytes(&self) -> u64 {
        self.stored_bytes.saturating_sub(self.perfect_bytes)
    }
}

/// Carves layers for `images`, where each image is the list of original
/// layer digests and `profiles` maps those digests to analyzed layers.
pub fn carve(
    images: &[Vec<Digest>],
    profiles: &FxHashMap<Digest, LayerProfile>,
    cfg: &CarveConfig,
) -> Carving {
    // 1. Per unique file: size and image signature.
    //    Signatures are kept as sorted image-index vectors and interned.
    let mut file_images: FxHashMap<Digest, (u64, FxHashSet<u32>)> = FxHashMap::default();
    for (idx, layers) in images.iter().enumerate() {
        for ld in layers {
            let Some(lp) = profiles.get(ld) else { continue };
            for f in &lp.files {
                let e = file_images.entry(f.digest).or_insert_with(|| (f.size, FxHashSet::default()));
                e.1.insert(idx as u32);
            }
        }
    }

    // Original storage: unique original layers' file bytes.
    let mut seen_layers = FxHashSet::default();
    let mut original_bytes = 0u64;
    for layers in images {
        for ld in layers {
            if seen_layers.insert(*ld) {
                if let Some(lp) = profiles.get(ld) {
                    original_bytes += lp.fls;
                }
            }
        }
    }

    // 2. Group by signature.
    let mut groups: FxHashMap<Vec<u32>, CarvedGroup> = FxHashMap::default();
    let mut perfect_bytes = 0u64;
    for (digest, (size, sig)) in file_images {
        perfect_bytes += size;
        let mut key: Vec<u32> = sig.into_iter().collect();
        key.sort_unstable();
        let g = groups.entry(key.clone()).or_insert_with(|| CarvedGroup {
            images: key,
            files: Vec::new(),
            bytes: 0,
        });
        g.files.push(digest);
        g.bytes += size;
    }

    // 3. Fold tiny groups into per-image residuals.
    let mut residual_bytes = vec![0u64; images.len()];
    let mut kept: Vec<CarvedGroup> = Vec::new();
    for (_, g) in groups {
        if g.bytes < cfg.min_group_bytes && g.images.len() > 1 {
            // Duplicate the group's bytes into every owning image.
            for &i in &g.images {
                residual_bytes[i as usize] += g.bytes;
            }
        } else if g.bytes < cfg.min_group_bytes {
            // Single-image tiny group: residual without duplication.
            residual_bytes[g.images[0] as usize] += g.bytes;
        } else {
            kept.push(g);
        }
    }
    // Deterministic output order.
    kept.sort_by(|a, b| b.bytes.cmp(&a.bytes).then_with(|| a.images.cmp(&b.images)));

    // 4. Per-image layer counts.
    let mut layers_per_image = vec![0u32; images.len()];
    for g in &kept {
        for &i in &g.images {
            layers_per_image[i as usize] += 1;
        }
    }
    for (i, &r) in residual_bytes.iter().enumerate() {
        if r > 0 {
            layers_per_image[i] += 1;
        }
    }

    let stored_bytes = kept.iter().map(|g| g.bytes).sum::<u64>() + residual_bytes.iter().sum::<u64>();
    Carving {
        groups: kept,
        residual_bytes,
        layers_per_image,
        stored_bytes,
        original_bytes,
        perfect_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::{FileKind, FileRecord};

    fn file(tag: &str, size: u64) -> FileRecord {
        FileRecord { path: tag.into(), digest: Digest::of(tag.as_bytes()), kind: FileKind::AsciiText, size }
    }

    fn layer(id: u8, files: Vec<FileRecord>) -> LayerProfile {
        LayerProfile {
            digest: Digest::of(&[id]),
            fls: files.iter().map(|f| f.size).sum(),
            cls: 1,
            dir_count: 1,
            file_count: files.len() as u64,
            max_depth: 1,
            files,
        }
    }

    /// Two images, one shared file and one private file each — all in
    /// differently-cut original layers so layer sharing saves nothing.
    fn setup() -> (Vec<Vec<Digest>>, FxHashMap<Digest, LayerProfile>) {
        let l1 = layer(1, vec![file("shared", 100), file("only-a", 10)]);
        let l2 = layer(2, vec![file("shared", 100), file("only-b", 20)]);
        let mut profiles = FxHashMap::default();
        let images = vec![vec![l1.digest], vec![l2.digest]];
        profiles.insert(l1.digest, l1);
        profiles.insert(l2.digest, l2);
        (images, profiles)
    }

    #[test]
    fn perfect_carving_reaches_dedup_bound() {
        let (images, profiles) = setup();
        let c = carve(&images, &profiles, &CarveConfig::default());
        // Original: 110 + 120 = 230; perfect: 100 + 10 + 20 = 130.
        assert_eq!(c.original_bytes, 230);
        assert_eq!(c.perfect_bytes, 130);
        assert_eq!(c.stored_bytes, 130);
        assert_eq!(c.duplicated_bytes(), 0);
        assert!((c.saving_factor() - 230.0 / 130.0).abs() < 1e-9);
        // Groups: {shared: both images}, {only-a: img0}, {only-b: img1}.
        assert_eq!(c.groups.len(), 3);
        let shared = c.groups.iter().find(|g| g.images.len() == 2).unwrap();
        assert_eq!(shared.bytes, 100);
        assert_eq!(c.layers_per_image, vec![2, 2]);
    }

    #[test]
    fn min_group_bytes_folds_small_groups() {
        let (images, profiles) = setup();
        // Threshold 50: the 10- and 20-byte private groups fold into
        // residuals (no duplication: single-image groups).
        let c = carve(&images, &profiles, &CarveConfig { min_group_bytes: 50 });
        assert_eq!(c.groups.len(), 1, "only the shared group survives");
        assert_eq!(c.residual_bytes, vec![10, 20]);
        assert_eq!(c.stored_bytes, 130, "single-image folds do not duplicate");
        assert_eq!(c.layers_per_image, vec![2, 2]);
    }

    #[test]
    fn folding_shared_groups_duplicates() {
        let (images, profiles) = setup();
        // Threshold beyond the shared group's 100 bytes: everything folds;
        // the shared file is duplicated into both images.
        let c = carve(&images, &profiles, &CarveConfig { min_group_bytes: 1000 });
        assert!(c.groups.is_empty());
        assert_eq!(c.residual_bytes, vec![110, 120]);
        assert_eq!(c.stored_bytes, 230);
        assert_eq!(c.duplicated_bytes(), 100);
        assert_eq!(c.layers_per_image, vec![1, 1]);
    }

    #[test]
    fn carving_never_stores_more_than_original_when_perfect() {
        let (images, profiles) = setup();
        let c = carve(&images, &profiles, &CarveConfig::default());
        assert!(c.stored_bytes <= c.original_bytes);
        assert_eq!(c.stored_bytes, c.perfect_bytes);
    }

    #[test]
    fn empty_inputs() {
        let c = carve(&[], &FxHashMap::default(), &CarveConfig::default());
        assert_eq!(c.stored_bytes, 0);
        assert_eq!(c.saving_factor(), 1.0);
        assert_eq!(c.mean_layers_per_image(), 0.0);
    }

    #[test]
    fn image_coverage_preserved() {
        // Every image's unique file set must be exactly covered by its
        // carved groups + residual (checked on group membership).
        let l1 = layer(1, vec![file("a", 1), file("b", 2), file("c", 3)]);
        let l2 = layer(2, vec![file("b", 2), file("c", 3)]);
        let l3 = layer(3, vec![file("c", 3), file("d", 4)]);
        let mut profiles = FxHashMap::default();
        let images = vec![vec![l1.digest], vec![l2.digest], vec![l3.digest]];
        for l in [l1, l2, l3] {
            profiles.insert(l.digest, l);
        }
        let c = carve(&images, &profiles, &CarveConfig::default());
        for (idx, layers) in images.iter().enumerate() {
            let mut want: FxHashSet<Digest> = FxHashSet::default();
            for ld in layers {
                for f in &profiles[ld].files {
                    want.insert(f.digest);
                }
            }
            let mut got: FxHashSet<Digest> = FxHashSet::default();
            for g in &c.groups {
                if g.images.contains(&(idx as u32)) {
                    got.extend(g.files.iter().copied());
                }
            }
            assert_eq!(got, want, "image {idx} coverage");
        }
    }

    #[test]
    fn layer_count_tradeoff_is_monotone() {
        // Larger min_group_bytes ⇒ fewer or equal shared groups, more or
        // equal stored bytes.
        let l1 = layer(1, (0..40).map(|i| file(&format!("f{i}"), 10 + i)).collect());
        let l2 = layer(2, (20..60).map(|i| file(&format!("f{i}"), 10 + i)).collect());
        let mut profiles = FxHashMap::default();
        let images = vec![vec![l1.digest], vec![l2.digest]];
        profiles.insert(l1.digest, l1);
        profiles.insert(l2.digest, l2);
        let mut last_groups = usize::MAX;
        let mut last_bytes = 0u64;
        for t in [0u64, 20, 50, 1000, 100_000] {
            let c = carve(&images, &profiles, &CarveConfig { min_group_bytes: t });
            assert!(c.groups.len() <= last_groups);
            assert!(c.stored_bytes >= last_bytes);
            last_groups = c.groups.len();
            last_bytes = c.stored_bytes;
        }
    }
}
