//! `dhub-mirror`: a live pull-through mirror/edge-cache tier in front of
//! origin registries.
//!
//! The paper's Fig. 8 discussion concludes Docker Hub "is a good fit for
//! caching popular repositories or images", and `dhub-cache` replays that
//! insight offline against synthetic pull traces. This crate promotes it
//! to a *serving* tier in the shape of Anwar et al.'s two-tier registry
//! cache (FAST '18): an edge mirror that absorbs popularity-skewed pulls
//! and only falls through to origin on misses.
//!
//! Three pieces (DESIGN.md §6e):
//!
//! * [`LiveCache`] — the `dhub-cache` policies (LRU/LFU/GDSF) wrapped in
//!   `dhub-sync` striped locks with real bytes behind them, byte-capacity
//!   bounded, victims reported by the policy itself;
//! * [`HashRing`] — deterministic consistent hashing over N origin
//!   shards, giving each key a primary and a failover order;
//! * [`Mirror`] — the pull-through tier: single-flight miss coalescing,
//!   per-shard health + `dhub-faults` retry/backoff, failover, and full
//!   `dhub_mirror_*` observability. It implements `dhub-registry`'s
//!   `MirrorBackend`, so `RegistryServer::start_mirror` serves it over
//!   real TCP and the whole study pipeline can pull through it.

pub mod cache;
pub mod mirror;
pub mod ring;

pub use cache::{AdmitOutcome, LiveCache, PolicyKind};
pub use mirror::{Mirror, MirrorConfig, MirrorReport};
pub use ring::HashRing;
