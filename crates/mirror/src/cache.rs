//! The live byte-capacity cache: `dhub-cache` policies promoted from trace
//! simulation to concurrent serving.
//!
//! Each stripe pairs one policy object (the *same* `CachePolicy` impls the
//! offline simulator replays) with the byte store it governs, behind one
//! `dhub-sync` striped mutex. The policy decides hit/admit/evict; the
//! store holds the actual bytes; `CachePolicy::request_evict` reports the
//! victims so the two can never disagree about residency. The total byte
//! budget is split evenly across stripes (an object larger than one
//! stripe's share is simply not cached — it still serves, pass-through).

use dhub_cache::{CachePolicy, GreedyDualSizeFrequency, Lfu, Lru};
use dhub_digest::FxHashMap;
use dhub_sync::Striped;
use std::sync::Arc;

/// Which replacement policy the live cache wraps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least-recently-used.
    Lru,
    /// Least-frequently-used.
    Lfu,
    /// Greedy-Dual-Size-Frequency (size-aware).
    Gdsf,
}

impl PolicyKind {
    /// Parses the CLI spelling (`lru` | `lfu` | `gdsf`).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "lru" => Some(PolicyKind::Lru),
            "lfu" => Some(PolicyKind::Lfu),
            "gdsf" => Some(PolicyKind::Gdsf),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Gdsf => "gdsf",
        }
    }

    fn build(self, capacity: u64) -> Box<dyn CachePolicy + Send> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(capacity)),
            PolicyKind::Lfu => Box::new(Lfu::new(capacity)),
            PolicyKind::Gdsf => Box::new(GreedyDualSizeFrequency::new(capacity)),
        }
    }
}

struct Shard {
    policy: Box<dyn CachePolicy + Send>,
    store: FxHashMap<u64, Arc<Vec<u8>>>,
}

/// What [`LiveCache::admit`] did with an object.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdmitOutcome {
    /// The object is now resident (false: oversized or already present).
    pub admitted: bool,
    /// Victims dropped to make room.
    pub evicted: u64,
    /// Bytes those victims freed.
    pub evicted_bytes: u64,
}

/// A sharded, capacity-bounded, policy-driven byte cache.
pub struct LiveCache {
    stripes: Striped<Shard>,
}

impl LiveCache {
    /// Builds a cache with `capacity_bytes` total budget split over
    /// `stripes` lock stripes (rounded up to a power of two).
    pub fn new(capacity_bytes: u64, policy: PolicyKind, stripes: usize) -> LiveCache {
        let n = stripes.max(1).next_power_of_two() as u64;
        let per_stripe = (capacity_bytes / n).max(1);
        LiveCache {
            stripes: Striped::new(n as usize, || Shard {
                policy: policy.build(per_stripe),
                store: FxHashMap::default(),
            }),
        }
    }

    /// Looks `key` up; a hit records the access on the policy (refreshing
    /// recency/frequency) and returns the bytes.
    pub fn lookup(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        let mut shard = self.stripes.stripe(key).lock();
        let bytes = shard.store.get(&key).cloned()?;
        let hit = shard.policy.request(key, bytes.len() as u64);
        debug_assert!(hit, "store and policy disagree on residency");
        Some(bytes)
    }

    /// Offers `bytes` for residency under `key` after a miss. The policy
    /// decides admission and names the victims; their bytes are dropped
    /// here so policy bookkeeping and the store stay in lockstep.
    pub fn admit(&self, key: u64, bytes: Arc<Vec<u8>>) -> AdmitOutcome {
        let size = bytes.len() as u64;
        let mut shard = self.stripes.stripe(key).lock();
        if shard.store.contains_key(&key) {
            // A concurrent flight admitted it first; nothing to do.
            return AdmitOutcome { admitted: true, ..AdmitOutcome::default() };
        }
        let mut evicted = Vec::new();
        let hit = shard.policy.request_evict(key, size, &mut evicted);
        debug_assert!(!hit, "key absent from store must be absent from policy");
        let admitted = size <= shard.policy.capacity();
        let mut freed = 0u64;
        for victim in &evicted {
            if let Some(dropped) = shard.store.remove(victim) {
                freed += dropped.len() as u64;
            }
        }
        if admitted {
            shard.store.insert(key, bytes);
        }
        AdmitOutcome { admitted, evicted: evicted.len() as u64, evicted_bytes: freed }
    }

    /// Bytes currently resident across all stripes.
    pub fn used_bytes(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().policy.used_bytes()).sum()
    }

    /// Objects currently resident across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().store.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total byte budget (sum of stripe budgets).
    pub fn capacity(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().policy.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn lookup_after_admit_round_trips() {
        let cache = LiveCache::new(1 << 20, PolicyKind::Lru, 4);
        assert!(cache.lookup(42).is_none());
        let out = cache.admit(42, blob(100, 7));
        assert!(out.admitted);
        assert_eq!(cache.lookup(42).unwrap().as_ref(), &vec![7u8; 100]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 100);
    }

    #[test]
    fn capacity_bounds_hold_and_victims_drop_bytes() {
        // 4 stripes × 256 B each.
        let cache = LiveCache::new(1024, PolicyKind::Lru, 4);
        for key in 0..200u64 {
            // Spread keys across stripes via high bits like real digests do.
            let spread = key << 56 | key;
            cache.admit(spread, blob(64, key as u8));
            assert!(cache.used_bytes() <= cache.capacity());
        }
        assert!(cache.len() > 0);
        // Store object count and policy byte count stay consistent.
        assert!(cache.used_bytes() >= cache.len() as u64 * 64 / 2);
    }

    #[test]
    fn oversized_objects_pass_through_uncached() {
        let cache = LiveCache::new(1024, PolicyKind::Gdsf, 4);
        let out = cache.admit(1, blob(4096, 1));
        assert!(!out.admitted);
        assert!(cache.lookup(1).is_none());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn all_policies_serve_hot_keys() {
        for kind in [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::Gdsf] {
            let cache = LiveCache::new(1 << 16, kind, 2);
            cache.admit(9, blob(128, 9));
            for _ in 0..50 {
                assert!(cache.lookup(9).is_some(), "{}", kind.name());
            }
        }
    }

    #[test]
    fn policy_kind_parses_cli_spellings() {
        assert_eq!(PolicyKind::parse("lru"), Some(PolicyKind::Lru));
        assert_eq!(PolicyKind::parse("lfu"), Some(PolicyKind::Lfu));
        assert_eq!(PolicyKind::parse("gdsf"), Some(PolicyKind::Gdsf));
        assert_eq!(PolicyKind::parse("arc"), None);
        assert_eq!(PolicyKind::Gdsf.name(), "gdsf");
    }
}
