//! The pull-through mirror: cache + ring + failover + instrumentation.
//!
//! Request flow for an anonymous (cacheable) fetch:
//!
//! 1. **Cache lookup** — a hit serves bytes without touching any origin.
//! 2. **Single-flight** — concurrent misses on one key elect a leader; the
//!    followers park on the flight's condvar and share the leader's
//!    result (`dhub_mirror_coalesced_total` counts them).
//! 3. **Ring + failover** — the leader walks the consistent-hash ring
//!    order for the key: healthy shards first, down shards as a last
//!    resort. Each origin attempt rides the shard client's `dhub-faults`
//!    retry/backoff; transport-level failure after retries marks the
//!    shard (down after `down_after` consecutive failures) and moves on.
//!    A request served by a non-primary shard counts one
//!    `dhub_mirror_failovers_total`.
//! 4. **Admission** — fetched bytes are offered to the cache; the policy
//!    names its victims and their bytes drop with them.
//!
//! Credentialed requests bypass both the cache and single-flight: private
//! bytes never enter the shared cache, and the origin keeps enforcing its
//! auth policy on every fetch. Errors are never cached either.
//!
//! Every counter the mirror exposes is a [`DeltaCounter`] on the handed-in
//! registry, and [`Mirror::report`] is *derived from* those counters — so
//! the report, a snapshot, and the Prometheus exposition reconcile by
//! construction (asserted in the chaos suite).

use crate::cache::{LiveCache, PolicyKind};
use crate::ring::HashRing;
use dhub_digest::FxHashMap;
use dhub_faults::{fault_key, RetryPolicy};
use dhub_model::{Digest, RepoName};
use dhub_obs::{span, DeltaCounter, Gauge, MetricsRegistry};
use dhub_registry::{BackendError, ClientError, MirrorBackend, RemoteRegistry};
use dhub_sync::{Condvar, Mutex, Striped};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// Tuning for a [`Mirror`].
#[derive(Clone, Debug)]
pub struct MirrorConfig {
    /// Total cache byte budget.
    pub cache_bytes: u64,
    /// Replacement policy the live cache wraps.
    pub policy: PolicyKind,
    /// Lock stripes for the cache (rounded up to a power of two).
    pub stripes: usize,
    /// Virtual nodes per origin shard on the hash ring.
    pub vnodes: usize,
    /// Retry/backoff each origin client uses before the mirror fails over.
    pub retry: RetryPolicy,
    /// Consecutive transport failures before a shard is marked down.
    pub down_after: u32,
}

impl MirrorConfig {
    /// Defaults: 8 stripes, 32 vnodes, a fast bounded retry, down after 3.
    pub fn new(cache_bytes: u64, policy: PolicyKind) -> MirrorConfig {
        MirrorConfig {
            cache_bytes,
            policy,
            stripes: 8,
            vnodes: 32,
            retry: RetryPolicy::fast(4),
            down_after: 3,
        }
    }

    /// Overrides the origin retry policy (builder-style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> MirrorConfig {
        self.retry = retry;
        self
    }

    /// Overrides the down-after threshold (builder-style).
    pub fn with_down_after(mut self, n: u32) -> MirrorConfig {
        self.down_after = n.max(1);
        self
    }
}

/// Health tracking for one origin shard.
struct ShardHealth {
    up: AtomicBool,
    consecutive_failures: AtomicU32,
    down_after: u32,
    up_gauge: Gauge,
}

impl ShardHealth {
    fn new(down_after: u32, up_gauge: Gauge) -> ShardHealth {
        up_gauge.set(1.0);
        ShardHealth { up: AtomicBool::new(true), consecutive_failures: AtomicU32::new(0), down_after, up_gauge }
    }

    fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    fn mark_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        if !self.up.swap(true, Ordering::Relaxed) {
            self.up_gauge.set(1.0);
        }
    }

    fn mark_failure(&self) {
        let n = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.down_after && self.up.swap(false, Ordering::Relaxed) {
            self.up_gauge.set(0.0);
        }
    }
}

/// One origin registry on the ring: its address, an anonymous client for
/// cacheable traffic, a token-dancing client for credentialed traffic,
/// and health state.
struct OriginShard {
    addr: SocketAddr,
    anon: RemoteRegistry,
    tokened: RemoteRegistry,
    health: ShardHealth,
}

/// A single-flight slot: followers park on the condvar until the leader
/// publishes the shared result.
struct Flight {
    state: Mutex<Option<Result<Arc<Vec<u8>>, BackendError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight { state: Mutex::new(None), cv: Condvar::new() }
    }
}

struct MirrorCounters {
    requests: DeltaCounter,
    hits: DeltaCounter,
    misses: DeltaCounter,
    coalesced: DeltaCounter,
    hit_bytes: DeltaCounter,
    miss_bytes: DeltaCounter,
    evictions: DeltaCounter,
    failovers: DeltaCounter,
    origin_fetches: DeltaCounter,
    origin_errors: DeltaCounter,
}

impl MirrorCounters {
    fn on(reg: &MetricsRegistry) -> MirrorCounters {
        MirrorCounters {
            requests: DeltaCounter::on(reg, "dhub_mirror_requests_total"),
            hits: DeltaCounter::on(reg, "dhub_mirror_hits_total"),
            misses: DeltaCounter::on(reg, "dhub_mirror_misses_total"),
            coalesced: DeltaCounter::on(reg, "dhub_mirror_coalesced_total"),
            hit_bytes: DeltaCounter::on(reg, "dhub_mirror_hit_bytes_total"),
            miss_bytes: DeltaCounter::on(reg, "dhub_mirror_miss_bytes_total"),
            evictions: DeltaCounter::on(reg, "dhub_mirror_evictions_total"),
            failovers: DeltaCounter::on(reg, "dhub_mirror_failovers_total"),
            origin_fetches: DeltaCounter::on(reg, "dhub_mirror_origin_fetches_total"),
            origin_errors: DeltaCounter::on(reg, "dhub_mirror_origin_errors_total"),
        }
    }
}

/// The mirror tier's view of its own traffic, derived from the
/// `dhub_mirror_*` counters (delta since this mirror was built).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MirrorReport {
    /// Cacheable requests entering the mirror.
    pub requests: u64,
    /// Served straight from cache.
    pub hits: u64,
    /// Leader fetches that had to go to origin.
    pub misses: u64,
    /// Followers that shared a leader's in-flight fetch.
    pub coalesced: u64,
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Bytes fetched from origin on misses.
    pub miss_bytes: u64,
    /// Cache victims dropped to make room.
    pub evictions: u64,
    /// Requests served by a non-primary shard.
    pub failovers: u64,
    /// Individual origin attempts (any shard).
    pub origin_fetches: u64,
    /// Origin attempts that failed after client-level retries.
    pub origin_errors: u64,
}

impl MirrorReport {
    /// Cache hit ratio over cacheable requests that resolved locally or at
    /// origin (followers excluded — they share a leader's outcome).
    pub fn hit_ratio(&self) -> f64 {
        let resolved = self.hits + self.misses;
        if resolved == 0 {
            0.0
        } else {
            self.hits as f64 / resolved as f64
        }
    }
}

/// A live pull-through mirror over N origin registries.
pub struct Mirror {
    origins: Vec<OriginShard>,
    ring: HashRing,
    cache: LiveCache,
    flights: Striped<FxHashMap<u64, Arc<Flight>>>,
    counters: MirrorCounters,
    cached_bytes_gauge: Gauge,
    obs: Arc<MetricsRegistry>,
}

impl Mirror {
    /// Builds a mirror over `origins` (one ring shard each), recording
    /// into `obs`. Shards start healthy.
    pub fn new(origins: &[SocketAddr], config: MirrorConfig, obs: Arc<MetricsRegistry>) -> Mirror {
        assert!(!origins.is_empty(), "a mirror needs at least one origin");
        let shards = origins
            .iter()
            .enumerate()
            .map(|(i, &addr)| OriginShard {
                addr,
                anon: RemoteRegistry::connect_anonymous(addr).with_retry_policy(config.retry),
                tokened: RemoteRegistry::connect(addr).with_retry_policy(config.retry),
                health: ShardHealth::new(
                    config.down_after,
                    obs.gauge(&format!("dhub_mirror_origin_up_{i}")),
                ),
            })
            .collect();
        Mirror {
            origins: shards,
            ring: HashRing::new(origins.len(), config.vnodes),
            cache: LiveCache::new(config.cache_bytes, config.policy, config.stripes),
            flights: Striped::new(16, FxHashMap::default),
            counters: MirrorCounters::on(&obs),
            cached_bytes_gauge: obs.gauge("dhub_mirror_cached_bytes"),
            obs,
        }
    }

    /// The origin addresses this mirror fronts, in shard order.
    pub fn origin_addrs(&self) -> Vec<SocketAddr> {
        self.origins.iter().map(|o| o.addr).collect()
    }

    /// Per-shard health, in shard order.
    pub fn origin_health(&self) -> Vec<bool> {
        self.origins.iter().map(|o| o.health.is_up()).collect()
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    /// The traffic report, derived from the `dhub_mirror_*` counters.
    pub fn report(&self) -> MirrorReport {
        MirrorReport {
            requests: self.counters.requests.delta(),
            hits: self.counters.hits.delta(),
            misses: self.counters.misses.delta(),
            coalesced: self.counters.coalesced.delta(),
            hit_bytes: self.counters.hit_bytes.delta(),
            miss_bytes: self.counters.miss_bytes.delta(),
            evictions: self.counters.evictions.delta(),
            failovers: self.counters.failovers.delta(),
            origin_fetches: self.counters.origin_fetches.delta(),
            origin_errors: self.counters.origin_errors.delta(),
        }
    }

    /// Walks the failover order for `key` — healthy shards in ring order,
    /// then down shards as a last resort — running `f` against each
    /// shard's client until one succeeds. Content verdicts (not found /
    /// auth required) return immediately: the shard answered, the answer
    /// is just "no". Transport failure after the client's own retries
    /// marks the shard and moves on.
    fn with_failover<T>(
        &self,
        key: u64,
        authed: bool,
        f: impl Fn(&RemoteRegistry) -> Result<T, ClientError>,
    ) -> Result<T, BackendError> {
        let order = self.ring.route(key);
        let primary = order[0];
        let healthy: Vec<usize> = order.iter().copied().filter(|&i| self.origins[i].health.is_up()).collect();
        let down: Vec<usize> = order.iter().copied().filter(|&i| !self.origins[i].health.is_up()).collect();
        let mut last = BackendError::Unavailable;
        for &i in healthy.iter().chain(down.iter()) {
            let shard = &self.origins[i];
            let client = if authed { &shard.tokened } else { &shard.anon };
            self.counters.origin_fetches.inc();
            let _span = span!(&self.obs, "mirror_origin_fetch", format!("{key:016x}/s{i}"));
            match f(client) {
                Ok(v) => {
                    shard.health.mark_success();
                    if i != primary {
                        self.counters.failovers.inc();
                    }
                    return Ok(v);
                }
                Err(ClientError::AuthRequired) => {
                    shard.health.mark_success();
                    return Err(BackendError::AuthRequired);
                }
                Err(ClientError::NotFound) => {
                    shard.health.mark_success();
                    return Err(BackendError::NotFound);
                }
                Err(e) => {
                    self.counters.origin_errors.inc();
                    shard.health.mark_failure();
                    last = match e {
                        ClientError::RateLimited => BackendError::RateLimited,
                        _ => BackendError::Unavailable,
                    };
                }
            }
        }
        Err(last)
    }

    /// The cache + single-flight front half for anonymous fetches.
    /// `fetch` runs at most once per concurrent group of requests.
    fn fetch_cached(
        &self,
        key: u64,
        fetch: impl Fn() -> Result<Vec<u8>, BackendError>,
    ) -> Result<Arc<Vec<u8>>, BackendError> {
        self.counters.requests.inc();
        if let Some(bytes) = self.cache.lookup(key) {
            self.counters.hits.inc();
            self.counters.hit_bytes.add(bytes.len() as u64);
            return Ok(bytes);
        }

        // Miss: join or lead the flight for this key.
        let (flight, leader) = {
            let mut flights = self.flights.stripe(key).lock();
            match flights.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight::new());
                    flights.insert(key, Arc::clone(&f));
                    (f, true)
                }
            }
        };

        if !leader {
            self.counters.coalesced.inc();
            let mut state = flight.state.lock();
            while state.is_none() {
                state = flight.cv.wait(state);
            }
            return state.clone().expect("leader published");
        }

        // Leader. Re-check the cache: a previous flight may have admitted
        // the key between our lookup and our flight registration.
        let result = match self.cache.lookup(key) {
            Some(bytes) => {
                self.counters.hits.inc();
                self.counters.hit_bytes.add(bytes.len() as u64);
                Ok(bytes)
            }
            None => {
                self.counters.misses.inc();
                let fetched = fetch().map(Arc::new);
                if let Ok(bytes) = &fetched {
                    self.counters.miss_bytes.add(bytes.len() as u64);
                    let outcome = self.cache.admit(key, Arc::clone(bytes));
                    self.counters.evictions.add(outcome.evicted);
                    self.cached_bytes_gauge.set(self.cache.used_bytes() as f64);
                }
                fetched
            }
        };

        // Publish to the followers, then retire the flight.
        {
            let mut state = flight.state.lock();
            *state = Some(result.clone());
            flight.cv.notify_all();
        }
        self.flights.stripe(key).lock().remove(&key);
        result
    }

    fn manifest_key(repo: &RepoName, reference: &str) -> u64 {
        fault_key(format!("manifest:{}:{reference}", repo.full()).as_bytes())
    }

    fn blob_key(digest: &Digest) -> u64 {
        fault_key(format!("blob:{}", digest.to_docker_string()).as_bytes())
    }
}

impl MirrorBackend for Mirror {
    /// Anonymous manifests are cached as their canonical `to_json` bytes
    /// (the client already verified the wire digest against them, so
    /// `Digest::of(bytes)` *is* the manifest digest). Credentialed
    /// requests go straight to origin — private content never enters the
    /// shared cache.
    fn fetch_manifest(
        &self,
        repo: &RepoName,
        reference: &str,
        authed: bool,
    ) -> Result<(Digest, Vec<u8>), BackendError> {
        let key = Mirror::manifest_key(repo, reference);
        if authed {
            let (digest, manifest) =
                self.with_failover(key, true, |c| c.get_manifest(repo, reference))?;
            return Ok((digest, manifest.to_json().into_bytes()));
        }
        let bytes = self.fetch_cached(key, || {
            self.with_failover(key, false, |c| c.get_manifest(repo, reference))
                .map(|(_, manifest)| manifest.to_json().into_bytes())
        })?;
        Ok((Digest::of(&bytes), bytes.as_ref().clone()))
    }

    /// Blobs are content-addressed, so cached bytes are verified by
    /// construction (the origin client re-hashes every fetch). Same
    /// credentialed bypass as manifests.
    fn fetch_blob(
        &self,
        repo: &RepoName,
        digest: &Digest,
        authed: bool,
    ) -> Result<Vec<u8>, BackendError> {
        let key = Mirror::blob_key(digest);
        if authed {
            return self.with_failover(key, true, |c| c.get_blob(repo, digest));
        }
        let bytes = self.fetch_cached(key, || {
            self.with_failover(key, false, |c| c.get_blob(repo, digest))
        })?;
        Ok(bytes.as_ref().clone())
    }

    /// Tag listings are mutable metadata, so they pass through uncached.
    fn tags(&self, repo: &RepoName, authed: bool) -> Result<Vec<String>, BackendError> {
        let key = fault_key(format!("tags:{}", repo.full()).as_bytes());
        self.with_failover(key, authed, |c| c.tags(repo))
    }
}
