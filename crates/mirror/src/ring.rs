//! Consistent-hash ring over origin shards.
//!
//! The mirror spreads keys over N origin registries with a classic
//! vnode-based hash ring: each shard owns `vnodes` points on a u64 circle,
//! a key routes to the first point clockwise from its hash, and the
//! failover order for a key is the distinct-shard order walking the ring
//! from there. Point positions derive from [`fault_key`] of a fixed
//! `"shard-{i}/vnode-{v}"` string, so the layout is a pure function of
//! (shard count, vnodes): every process — server, test, bench — agrees on
//! which shard is primary for a key.

use dhub_faults::fault_key;

/// A consistent-hash ring mapping u64 keys to shard indices `0..shards`.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// (point, shard) sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds a ring with `vnodes` points per shard. At least one shard
    /// and one vnode.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                let point = fault_key(format!("shard-{shard}/vnode-{v}").as_bytes());
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` (the first ring point clockwise of it).
    pub fn primary(&self, key: u64) -> usize {
        self.route(key)[0]
    }

    /// The full failover order for `key`: every shard exactly once, the
    /// primary first, replicas in ring-walk order after it.
    pub fn route(&self, key: u64) -> Vec<usize> {
        let start = self.points.partition_point(|&(p, _)| p < key);
        let mut order = Vec::with_capacity(self.shards);
        let mut seen = vec![false; self.shards];
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_covers_every_shard_once() {
        let ring = HashRing::new(4, 16);
        for key in [0u64, 1, 42, u64::MAX, fault_key(b"abc")] {
            let order = ring.route(key);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "order {order:?} for key {key}");
        }
    }

    #[test]
    fn layout_is_deterministic() {
        let a = HashRing::new(3, 32);
        let b = HashRing::new(3, 32);
        for key in 0..1000u64 {
            assert_eq!(a.route(key * 7919), b.route(key * 7919));
        }
    }

    #[test]
    fn keys_spread_over_shards() {
        let ring = HashRing::new(4, 128);
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[ring.primary(fault_key(&key.to_le_bytes()))] += 1;
        }
        // Consistent hashing balances statistically, not perfectly; with
        // 128 vnodes per shard no shard should fall under a 10% share.
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 400, "shard {i} got only {c}/4000 keys");
        }
    }

    #[test]
    fn single_shard_ring_routes_everything_to_it() {
        let ring = HashRing::new(1, 8);
        assert_eq!(ring.route(12345), vec![0]);
    }
}
