//! End-to-end tests for the pull-through mirror tier: real TCP origins,
//! single-flight coalescing, ring failover with a dead shard, the
//! credentialed-bypass rule, and exact reconciliation of the
//! `dhub_mirror_*` counters against the report and the Prometheus
//! exposition a mirror-mode server scrapes out.

use dhub_faults::{FaultConfig, FaultInjector, FaultKind, RetryPolicy};
use dhub_mirror::{Mirror, MirrorConfig, PolicyKind};
use dhub_model::{Digest, LayerRef, Manifest, RepoName};
use dhub_obs::MetricsRegistry;
use dhub_registry::{BackendError, MirrorBackend, Registry, RegistryServer, RemoteRegistry};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// An origin registry with `n` public repos (one blob each) plus one
/// auth-required repo.
fn origin_registry(n: usize) -> Arc<Registry> {
    let reg = Registry::new();
    for i in 0..n {
        let repo = RepoName::official(&format!("repo{i}"));
        reg.create_repo(repo.clone(), false);
        let blob = format!("blob-bytes-{i}").into_bytes();
        let manifest =
            Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
        reg.push_image(&repo, "latest", &manifest, vec![blob]).unwrap();
    }
    let private = RepoName::user("corp", "secret");
    reg.create_repo(private.clone(), true);
    let pblob = b"private-bytes".to_vec();
    let pm = Manifest::new(vec![LayerRef { digest: Digest::of(&pblob), size: pblob.len() as u64 }]);
    reg.push_image(&private, "latest", &pm, vec![pblob]).unwrap();
    Arc::new(reg)
}

fn manifest_for(reg: &Registry, name: &str) -> (RepoName, Manifest) {
    let repo = RepoName::official(name);
    let sess = reg.get_manifest(&repo, "latest", false).unwrap();
    (repo, sess.manifest.clone())
}

fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("non-numeric in {line:?}"));
        out.insert(name.to_string(), value);
    }
    out
}

#[test]
fn mirror_serves_origin_objects_and_caches_them() {
    let reg = origin_registry(3);
    let origin = RegistryServer::start(reg.clone()).unwrap();
    let obs = Arc::new(MetricsRegistry::new());
    let mirror = Mirror::new(
        &[origin.addr()],
        MirrorConfig::new(1 << 20, PolicyKind::Lru),
        obs.clone(),
    );

    let (repo, manifest) = manifest_for(&reg, "repo0");
    let (digest, bytes) = mirror.fetch_manifest(&repo, "latest", false).unwrap();
    assert_eq!(digest, Digest::of(&bytes));
    assert_eq!(Manifest::from_json(std::str::from_utf8(&bytes).unwrap()).unwrap(), manifest);

    let layer = &manifest.layers[0];
    let blob = mirror.fetch_blob(&repo, &layer.digest, false).unwrap();
    assert_eq!(Digest::of(&blob), layer.digest);

    // Second round: both served from cache, origin untouched.
    let fetches_before = mirror.report().origin_fetches;
    mirror.fetch_manifest(&repo, "latest", false).unwrap();
    mirror.fetch_blob(&repo, &layer.digest, false).unwrap();
    let r = mirror.report();
    assert_eq!(r.origin_fetches, fetches_before, "warm hits must not touch origin");
    assert_eq!(r.hits, 2);
    assert_eq!(r.misses, 2);
    assert_eq!(r.requests, r.hits + r.misses + r.coalesced);
    assert!(r.hit_bytes > 0 && r.miss_bytes > 0);
}

#[test]
fn concurrent_misses_coalesce_into_one_origin_fetch() {
    let reg = origin_registry(1);
    // Every origin request stalls 300 ms: a wide window for the follower
    // threads to pile onto the leader's flight.
    let slow = FaultInjector::new(
        FaultConfig::only(7, 1.0, FaultKind::SlowLink).with_slow_link(Duration::from_millis(300)),
    );
    let origin = RegistryServer::start_with_faults(reg.clone(), Some(Arc::new(slow))).unwrap();
    let obs = Arc::new(MetricsRegistry::new());
    let mirror = Arc::new(Mirror::new(
        &[origin.addr()],
        MirrorConfig::new(1 << 20, PolicyKind::Lru),
        obs.clone(),
    ));

    let (repo, manifest) = manifest_for(&reg, "repo0");
    let digest = manifest.layers[0].digest;
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let m = Arc::clone(&mirror);
            let repo = repo.clone();
            std::thread::spawn(move || m.fetch_blob(&repo, &digest, false).unwrap())
        })
        .collect();
    let blobs: Vec<Vec<u8>> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for b in &blobs {
        assert_eq!(Digest::of(b), digest);
    }

    let r = mirror.report();
    assert_eq!(r.misses, 1, "one leader");
    assert_eq!(r.coalesced, 3, "three followers");
    assert_eq!(r.origin_fetches, 1, "exactly one origin round-trip");
    assert_eq!(r.requests, 4);
    assert_eq!(r.requests, r.hits + r.misses + r.coalesced);
}

#[test]
fn dead_shard_fails_over_and_is_marked_down() {
    let reg = origin_registry(12);
    let origin_live = RegistryServer::start(reg.clone()).unwrap();
    let origin_dead = RegistryServer::start(reg.clone()).unwrap();
    let dead_addr = origin_dead.addr();
    origin_dead.shutdown(); // permanent connection-refused on this address

    let obs = Arc::new(MetricsRegistry::new());
    let mirror = Mirror::new(
        &[dead_addr, origin_live.addr()],
        MirrorConfig::new(1 << 20, PolicyKind::Gdsf)
            .with_retry(RetryPolicy::fast(1).with_seed(7))
            .with_down_after(2),
        obs.clone(),
    );
    assert_eq!(mirror.origin_health(), vec![true, true]);

    // Every object must still serve; keys whose primary is the dead shard
    // exercise failover.
    for i in 0..12 {
        let (repo, manifest) = manifest_for(&reg, &format!("repo{i}"));
        let (_, bytes) = mirror.fetch_manifest(&repo, "latest", false).unwrap();
        assert!(!bytes.is_empty());
        let blob = mirror.fetch_blob(&repo, &manifest.layers[0].digest, false).unwrap();
        assert_eq!(Digest::of(&blob), manifest.layers[0].digest);
    }

    let r = mirror.report();
    assert!(r.failovers > 0, "some primaries must have been the dead shard");
    assert!(r.origin_errors > 0);
    assert_eq!(mirror.origin_health(), vec![false, true], "dead shard marked down");
    assert_eq!(obs.gauge_value("dhub_mirror_origin_up_0"), 0.0);
    assert_eq!(obs.gauge_value("dhub_mirror_origin_up_1"), 1.0);
    // Every request still resolved exactly once.
    assert_eq!(r.requests, r.hits + r.misses + r.coalesced);
}

#[test]
fn credentialed_requests_bypass_the_shared_cache() {
    let reg = origin_registry(1);
    let origin = RegistryServer::start(reg.clone()).unwrap();
    let obs = Arc::new(MetricsRegistry::new());
    let mirror = Mirror::new(
        &[origin.addr()],
        MirrorConfig::new(1 << 20, PolicyKind::Lru),
        obs.clone(),
    );

    let private = RepoName::user("corp", "secret");
    // Anonymous: origin's 401 propagates as AuthRequired, nothing cached.
    assert_eq!(
        mirror.fetch_manifest(&private, "latest", false).unwrap_err(),
        BackendError::AuthRequired
    );
    assert_eq!(mirror.cached_bytes(), 0, "errors are never cached");

    // Credentialed: served via the token dance, still nothing cached.
    let (digest, bytes) = mirror.fetch_manifest(&private, "latest", true).unwrap();
    assert_eq!(digest, Digest::of(&bytes));
    let manifest = Manifest::from_json(std::str::from_utf8(&bytes).unwrap()).unwrap();
    let blob = mirror.fetch_blob(&private, &manifest.layers[0].digest, true).unwrap();
    assert_eq!(blob, b"private-bytes");
    assert_eq!(mirror.cached_bytes(), 0, "private bytes never enter the shared cache");
}

#[test]
fn eviction_keeps_live_cache_inside_budget() {
    let reg = origin_registry(30);
    let origin = RegistryServer::start(reg.clone()).unwrap();
    let obs = Arc::new(MetricsRegistry::new());
    // Tiny budget: 2 stripes, forcing evictions as 30 blobs pull through.
    let mut cfg = MirrorConfig::new(128, PolicyKind::Lru);
    cfg.stripes = 2;
    let mirror = Mirror::new(&[origin.addr()], cfg, obs.clone());

    for i in 0..30 {
        let (repo, manifest) = manifest_for(&reg, &format!("repo{i}"));
        mirror.fetch_blob(&repo, &manifest.layers[0].digest, false).unwrap();
        assert!(mirror.cached_bytes() <= 128, "budget exceeded");
    }
    assert!(mirror.report().evictions > 0, "evictions must have fired");
}

#[test]
fn mirror_server_reconciles_report_snapshot_and_exposition() {
    let reg = origin_registry(6);
    let origin = RegistryServer::start(reg.clone()).unwrap();
    let obs = Arc::new(MetricsRegistry::new());
    let mirror = Arc::new(Mirror::new(
        &[origin.addr()],
        MirrorConfig::new(1 << 20, PolicyKind::Lfu),
        obs.clone(),
    ));
    let front =
        RegistryServer::start_mirror(mirror.clone(), obs.clone(), dhub_registry::DEFAULT_MAX_CONNS)
            .unwrap();

    // Pull everything through the mirror over real TCP, twice (cold+warm).
    let client = RemoteRegistry::connect_anonymous(front.addr());
    for _round in 0..2 {
        for i in 0..6 {
            let repo = RepoName::official(&format!("repo{i}"));
            let (digest, manifest) = client.get_manifest(&repo, "latest").unwrap();
            assert_eq!(digest, manifest.digest());
            let blob = client.get_blob(&repo, &manifest.layers[0].digest).unwrap();
            assert_eq!(Digest::of(&blob), manifest.layers[0].digest);
        }
    }

    let r = mirror.report();
    assert_eq!(r.requests, 24, "6 manifests + 6 blobs, two rounds");
    assert_eq!(r.hits + r.misses + r.coalesced, r.requests);
    assert_eq!(r.misses, 12, "cold round misses everything");
    assert_eq!(r.hits, 12, "warm round hits everything");

    // Report == registry counters == snapshot == Prometheus exposition.
    let checks: [(&str, u64); 10] = [
        ("dhub_mirror_requests_total", r.requests),
        ("dhub_mirror_hits_total", r.hits),
        ("dhub_mirror_misses_total", r.misses),
        ("dhub_mirror_coalesced_total", r.coalesced),
        ("dhub_mirror_hit_bytes_total", r.hit_bytes),
        ("dhub_mirror_miss_bytes_total", r.miss_bytes),
        ("dhub_mirror_evictions_total", r.evictions),
        ("dhub_mirror_failovers_total", r.failovers),
        ("dhub_mirror_origin_fetches_total", r.origin_fetches),
        ("dhub_mirror_origin_errors_total", r.origin_errors),
    ];
    let snap = obs.snapshot();
    let exposition = parse_exposition(&client.metrics_text().unwrap());
    for (name, want) in checks {
        assert_eq!(obs.counter_value(name), want, "{name} vs report");
        assert_eq!(snap.counter(name), want, "{name} vs snapshot");
        assert_eq!(exposition.get(name).copied(), Some(want as f64), "{name} vs exposition");
    }
    assert_eq!(exposition.get("dhub_mirror_origin_up_0").copied(), Some(1.0));
    front.shutdown();
}
