//! Dedup broken down by file type (Figs. 27–29).

use crate::file_dedup::FileEntry;
use dhub_model::{Digest, FileKind, LayerProfile, TypeGroup};
use dhub_par::ShardedMap;

/// Dedup numbers for one type group or leaf type.
#[derive(Clone, Copy, Debug, Default)]
pub struct TypeDedupRow {
    pub instances: u64,
    pub unique: u64,
    /// Logical bytes before dedup.
    pub bytes: u64,
    /// Physical bytes after dedup.
    pub unique_bytes: u64,
}

impl TypeDedupRow {
    /// Fraction of instances removable by dedup — the paper's per-type
    /// "deduplication ratio" percentages (Fig. 27: e.g. scripts 98 %).
    pub fn redundancy(&self) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            1.0 - self.unique as f64 / self.instances as f64
        }
    }

    /// Capacity redundancy: fraction of bytes removable.
    pub fn capacity_redundancy(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            1.0 - self.unique_bytes as f64 / self.bytes as f64
        }
    }
}

fn build_index(layers: &[&LayerProfile], threads: usize) -> Vec<(Digest, FileEntry)> {
    let index: ShardedMap<Digest, FileEntry> = ShardedMap::new(64);
    dhub_par::par_for_each(threads, layers, |layer| {
        for f in &layer.files {
            index.update(f.digest, |e| {
                e.copies += 1;
                e.size = f.size;
                e.kind = Some(f.kind);
            });
        }
    });
    index.into_entries()
}

/// Per-group dedup rows, in [`TypeGroup::ALL`] order.
pub fn dedup_by_group(layers: &[&LayerProfile], threads: usize) -> Vec<(TypeGroup, TypeDedupRow)> {
    let entries = build_index(layers, threads);
    let mut rows = vec![TypeDedupRow::default(); TypeGroup::ALL.len()];
    for (_, e) in entries {
        let kind = e.kind.expect("entries always record a kind");
        let g = TypeGroup::ALL.iter().position(|&x| x == kind.group()).unwrap();
        rows[g].instances += e.copies;
        rows[g].unique += 1;
        rows[g].bytes += e.copies * e.size;
        rows[g].unique_bytes += e.size;
    }
    TypeGroup::ALL.iter().copied().zip(rows).collect()
}

/// Per-leaf-kind dedup rows, restricted to kinds of `group` (e.g. the EOL
/// breakdown of Fig. 28 or the source-code breakdown of Fig. 29).
pub fn dedup_by_kind(
    layers: &[&LayerProfile],
    group: TypeGroup,
    threads: usize,
) -> Vec<(FileKind, TypeDedupRow)> {
    let entries = build_index(layers, threads);
    let mut map: std::collections::BTreeMap<FileKind, TypeDedupRow> = std::collections::BTreeMap::new();
    for (_, e) in entries {
        let kind = e.kind.expect("entries always record a kind");
        if kind.group() != group {
            continue;
        }
        let row = map.entry(kind).or_default();
        row.instances += e.copies;
        row.unique += 1;
        row.bytes += e.copies * e.size;
        row.unique_bytes += e.size;
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::FileRecord;

    fn file(tag: &str, kind: FileKind, size: u64) -> FileRecord {
        FileRecord { path: tag.into(), digest: Digest::of(tag.as_bytes()), kind, size }
    }

    fn layer(id: u8, files: Vec<FileRecord>) -> LayerProfile {
        LayerProfile {
            digest: Digest::of(&[id]),
            fls: files.iter().map(|f| f.size).sum(),
            cls: 1,
            dir_count: 1,
            file_count: files.len() as u64,
            max_depth: 1,
            files,
        }
    }

    #[test]
    fn group_rows_aggregate() {
        // Two copies of one C file, one unique C file, one script.
        let l1 = layer(1, vec![file("c1", FileKind::CSource, 100), file("s1", FileKind::ShellScript, 10)]);
        let l2 = layer(2, vec![file("c1", FileKind::CSource, 100), file("c2", FileKind::CSource, 40)]);
        let rows = dedup_by_group(&[&l1, &l2], 2);
        let sc = rows.iter().find(|(g, _)| *g == TypeGroup::SourceCode).unwrap().1;
        assert_eq!(sc.instances, 3);
        assert_eq!(sc.unique, 2);
        assert_eq!(sc.bytes, 240);
        assert_eq!(sc.unique_bytes, 140);
        assert!((sc.redundancy() - 1.0 / 3.0).abs() < 1e-9);
        let scripts = rows.iter().find(|(g, _)| *g == TypeGroup::Scripts).unwrap().1;
        assert_eq!(scripts.instances, 1);
        assert_eq!(scripts.redundancy(), 0.0);
    }

    #[test]
    fn kind_rows_restricted_to_group() {
        let l = layer(
            1,
            vec![
                file("e", FileKind::Elf, 100),
                file("p", FileKind::PythonBytecode, 10),
                file("c", FileKind::CSource, 5),
            ],
        );
        let rows = dedup_by_kind(&[&l], TypeGroup::Eol, 1);
        let kinds: Vec<FileKind> = rows.iter().map(|(k, _)| *k).collect();
        assert!(kinds.contains(&FileKind::Elf));
        assert!(kinds.contains(&FileKind::PythonBytecode));
        assert!(!kinds.contains(&FileKind::CSource));
    }

    #[test]
    fn capacity_redundancy() {
        let l1 = layer(1, vec![file("x", FileKind::Elf, 1000)]);
        let l2 = layer(2, vec![file("x", FileKind::Elf, 1000)]);
        let rows = dedup_by_group(&[&l1, &l2], 1);
        let eol = rows.iter().find(|(g, _)| *g == TypeGroup::Eol).unwrap().1;
        assert!((eol.capacity_redundancy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_rows_are_zero() {
        let rows = dedup_by_group(&[], 1);
        for (_, r) in rows {
            assert_eq!(r.instances, 0);
            assert_eq!(r.redundancy(), 0.0);
        }
    }
}
