//! File-level deduplication (Fig. 24 and the paper's headline numbers:
//! only 3.2 % of files unique; 31.5× by count, 6.9× by capacity).

use dhub_model::{FileKind, LayerProfile};
use dhub_par::ShardedMap;

/// Per-unique-file aggregate.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileEntry {
    /// Number of instances (copies) across all layers.
    pub copies: u64,
    /// File size in bytes.
    pub size: u64,
    /// Classified kind (identical content ⇒ identical kind).
    pub kind: Option<FileKind>,
}

/// Dedup statistics over a layer population.
#[derive(Clone, Debug)]
pub struct FileDedupStats {
    pub total_instances: u64,
    pub unique_files: u64,
    /// Logical bytes (every instance counted).
    pub total_bytes: u64,
    /// Physical bytes after dedup (each unique file once).
    pub unique_bytes: u64,
    /// Copy count of every unique file, descending.
    pub repeat_counts: Vec<u64>,
    /// Copy count and size of the most-repeated file.
    pub max_repeat: u64,
    pub max_repeat_size: u64,
}

impl FileDedupStats {
    /// The paper's count dedup ratio (31.5× at full scale).
    pub fn count_ratio(&self) -> f64 {
        if self.unique_files == 0 {
            1.0
        } else {
            self.total_instances as f64 / self.unique_files as f64
        }
    }

    /// The paper's capacity dedup ratio (6.9× at full scale).
    pub fn capacity_ratio(&self) -> f64 {
        if self.unique_bytes == 0 {
            1.0
        } else {
            self.total_bytes as f64 / self.unique_bytes as f64
        }
    }

    /// Fraction of files that remain after dedup (paper: 3.2 %).
    pub fn unique_fraction(&self) -> f64 {
        if self.total_instances == 0 {
            0.0
        } else {
            self.unique_files as f64 / self.total_instances as f64
        }
    }

    /// Fraction of *instances* whose file has more than one copy
    /// (paper: 99.4 %).
    pub fn duplicated_instance_fraction(&self) -> f64 {
        if self.total_instances == 0 {
            return 0.0;
        }
        let dup_instances: u64 = self.repeat_counts.iter().filter(|&&c| c > 1).sum();
        dup_instances as f64 / self.total_instances as f64
    }

    /// Instance-weighted repeat counts for Fig. 24's CDF ("50 % of files
    /// have exactly 4 copies" weights each *instance* by its file's copy
    /// count). Returns `(copies, instances_with_that_count)` ascending.
    pub fn repeat_histogram(&self) -> Vec<(u64, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for &c in &self.repeat_counts {
            *map.entry(c).or_insert(0u64) += c; // weight by instances
        }
        map.into_iter().collect()
    }
}

/// Builds the dedup index over all files in all layers, in parallel.
pub fn file_dedup(layers: &[&LayerProfile], threads: usize) -> FileDedupStats {
    let index: ShardedMap<dhub_model::Digest, FileEntry> = ShardedMap::new(64);
    dhub_par::par_for_each(threads, layers, |layer| {
        for f in &layer.files {
            index.update(f.digest, |e| {
                e.copies += 1;
                e.size = f.size;
                e.kind = Some(f.kind);
            });
        }
    });

    let mut total_instances = 0u64;
    let mut total_bytes = 0u64;
    let mut unique_bytes = 0u64;
    let mut repeat_counts = Vec::new();
    let mut max_repeat = 0u64;
    let mut max_repeat_size = 0u64;
    let entries = index.into_entries();
    let unique_files = entries.len() as u64;
    for (_, e) in entries {
        total_instances += e.copies;
        total_bytes += e.copies * e.size;
        unique_bytes += e.size;
        repeat_counts.push(e.copies);
        if e.copies > max_repeat {
            max_repeat = e.copies;
            max_repeat_size = e.size;
        }
    }
    repeat_counts.sort_unstable_by(|a, b| b.cmp(a));

    FileDedupStats {
        total_instances,
        unique_files,
        total_bytes,
        unique_bytes,
        repeat_counts,
        max_repeat,
        max_repeat_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::{Digest, FileRecord};

    fn file(content: &[u8], size: u64) -> FileRecord {
        FileRecord {
            path: "p".into(),
            digest: Digest::of(content),
            kind: FileKind::AsciiText,
            size,
        }
    }

    fn layer(files: Vec<FileRecord>) -> LayerProfile {
        LayerProfile {
            digest: Digest::of(&[files.len() as u8]),
            fls: files.iter().map(|f| f.size).sum(),
            cls: 10,
            dir_count: 1,
            file_count: files.len() as u64,
            max_depth: 1,
            files,
        }
    }

    #[test]
    fn counts_copies_across_layers() {
        let l1 = layer(vec![file(b"a", 100), file(b"b", 50)]);
        let l2 = layer(vec![file(b"a", 100), file(b"c", 25)]);
        let l3 = layer(vec![file(b"a", 100)]);
        let stats = file_dedup(&[&l1, &l2, &l3], 2);
        assert_eq!(stats.total_instances, 5);
        assert_eq!(stats.unique_files, 3);
        assert_eq!(stats.total_bytes, 300 + 50 + 25);
        assert_eq!(stats.unique_bytes, 175);
        assert_eq!(stats.max_repeat, 3);
        assert_eq!(stats.max_repeat_size, 100);
        assert!((stats.count_ratio() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unique_fraction_and_dup_instances() {
        let l1 = layer(vec![file(b"a", 10), file(b"a", 10), file(b"b", 10)]);
        let stats = file_dedup(&[&l1], 1);
        assert_eq!(stats.total_instances, 3);
        assert_eq!(stats.unique_files, 2);
        assert!((stats.unique_fraction() - 2.0 / 3.0).abs() < 1e-9);
        // "a" contributes 2 duplicated instances; "b" none.
        assert!((stats.duplicated_instance_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn repeat_histogram_instance_weighted() {
        // 1 file with 4 copies, 2 files with 1 copy.
        let l = layer(vec![
            file(b"x", 1),
            file(b"x", 1),
            file(b"x", 1),
            file(b"x", 1),
            file(b"y", 1),
            file(b"z", 1),
        ]);
        let stats = file_dedup(&[&l], 1);
        let hist = stats.repeat_histogram();
        assert_eq!(hist, vec![(1, 2), (4, 4)]);
    }

    #[test]
    fn empty_population() {
        let stats = file_dedup(&[], 4);
        assert_eq!(stats.count_ratio(), 1.0);
        assert_eq!(stats.capacity_ratio(), 1.0);
        assert_eq!(stats.unique_fraction(), 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let layers: Vec<LayerProfile> = (0..50)
            .map(|i| {
                layer(
                    (0..20)
                        .map(|j| file(format!("{}", (i * j) % 37).as_bytes(), 10))
                        .collect(),
                )
            })
            .collect();
        let refs: Vec<&LayerProfile> = layers.iter().collect();
        let a = file_dedup(&refs, 1);
        let b = file_dedup(&refs, 8);
        assert_eq!(a.total_instances, b.total_instances);
        assert_eq!(a.unique_files, b.unique_files);
        assert_eq!(a.total_bytes, b.total_bytes);
        let mut ra = a.repeat_counts.clone();
        let mut rb = b.repeat_counts.clone();
        ra.sort_unstable();
        rb.sort_unstable();
        assert_eq!(ra, rb);
    }
}
