//! Dedup ratio growth with dataset size (Fig. 25).
//!
//! The paper draws 4 random samples of increasing layer counts plus the
//! full dataset and shows the dedup ratio rising from 3.6× to 31.5× (count)
//! and 1.9× to 6.9× (capacity). The same procedure runs here: deterministic
//! samples of the layer population at increasing sizes.

use crate::file_dedup::file_dedup;
use dhub_model::LayerProfile;
use dhub_stats::Rng;

/// One point of the growth curve.
#[derive(Clone, Copy, Debug)]
pub struct GrowthPoint {
    /// Layers in the sample.
    pub layers: usize,
    pub count_ratio: f64,
    pub capacity_ratio: f64,
}

/// Computes dedup ratios for random samples of `sizes` layers each (plus
/// whatever sizes exceed the population, clamped to "all layers").
pub fn dedup_growth(
    layers: &[&LayerProfile],
    sizes: &[usize],
    seed: u64,
    threads: usize,
) -> Vec<GrowthPoint> {
    let mut rng = Rng::new(seed);
    let mut indices: Vec<usize> = (0..layers.len()).collect();
    rng.shuffle(&mut indices);

    sizes
        .iter()
        .map(|&want| {
            let n = want.min(layers.len());
            // Prefix of one shuffle ⇒ samples are nested, like growing a
            // registry by adding layers.
            let sample: Vec<&LayerProfile> = indices[..n].iter().map(|&i| layers[i]).collect();
            let stats = file_dedup(&sample, threads);
            GrowthPoint {
                layers: n,
                count_ratio: stats.count_ratio(),
                capacity_ratio: stats.capacity_ratio(),
            }
        })
        .collect()
}

/// The sample ladder the figure uses, scaled to the population size:
/// four geometric steps plus the full dataset.
pub fn default_sample_sizes(population: usize) -> Vec<usize> {
    let mut sizes: Vec<usize> = (0..4)
        .map(|i| ((population as f64) * 0.08 * 2.2f64.powi(i)) as usize)
        .filter(|&s| s >= 2 && s < population)
        .collect();
    sizes.push(population);
    sizes.dedup();
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::{Digest, FileKind, FileRecord};

    /// Layers drawing from a small shared file universe: bigger samples
    /// cover more of the universe and re-hit it more often, so the ratio
    /// grows — the mechanism behind Fig. 25.
    fn population(n: usize) -> Vec<LayerProfile> {
        let mut rng = Rng::new(1);
        (0..n)
            .map(|i| {
                let files: Vec<FileRecord> = (0..30)
                    .map(|_| {
                        let proto = rng.below(400);
                        FileRecord {
                            path: format!("f{proto}"),
                            digest: Digest::of(&proto.to_le_bytes()),
                            kind: FileKind::AsciiText,
                            size: 100 + proto % 50,
                        }
                    })
                    .collect();
                LayerProfile {
                    digest: Digest::of(&(i as u64).to_le_bytes()),
                    fls: files.iter().map(|f| f.size).sum(),
                    cls: 10,
                    dir_count: 1,
                    file_count: 30,
                    max_depth: 2,
                    files,
                }
            })
            .collect()
    }

    #[test]
    fn ratio_grows_with_sample_size() {
        let pop = population(500);
        let refs: Vec<&LayerProfile> = pop.iter().collect();
        let points = dedup_growth(&refs, &[5, 50, 500], 7, 2);
        assert_eq!(points.len(), 3);
        assert!(points[0].count_ratio < points[1].count_ratio);
        assert!(points[1].count_ratio < points[2].count_ratio);
        assert!(points[0].capacity_ratio < points[2].capacity_ratio);
        // Count ratio ≥ capacity ratio when hot files skew small... not
        // guaranteed in general; just require both > 1 for the full set.
        assert!(points[2].count_ratio > 2.0);
        assert!(points[2].capacity_ratio > 2.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let pop = population(100);
        let refs: Vec<&LayerProfile> = pop.iter().collect();
        let a = dedup_growth(&refs, &[10, 100], 3, 2);
        let b = dedup_growth(&refs, &[10, 100], 3, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.layers, y.layers);
            assert!((x.count_ratio - y.count_ratio).abs() < 1e-12);
        }
    }

    #[test]
    fn oversized_sample_clamped() {
        let pop = population(20);
        let refs: Vec<&LayerProfile> = pop.iter().collect();
        let points = dedup_growth(&refs, &[1000], 3, 2);
        assert_eq!(points[0].layers, 20);
    }

    #[test]
    fn default_ladder_shape() {
        let sizes = default_sample_sizes(10_000);
        assert!(sizes.len() >= 4);
        assert_eq!(*sizes.last().unwrap(), 10_000);
        for w in sizes.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Tiny populations still produce a ladder ending at the population.
        let tiny = default_sample_sizes(10);
        assert_eq!(*tiny.last().unwrap(), 10);
    }
}
