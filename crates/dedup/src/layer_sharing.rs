//! Layer sharing analysis (Fig. 23, §V-A).

use crate::ImageLayers;
use dhub_digest::FxHashMap;
use dhub_model::Digest;

/// Result of the layer-sharing analysis.
#[derive(Clone, Debug)]
pub struct LayerSharing {
    /// Reference count per unique layer, descending.
    pub ref_counts: Vec<(Digest, u64)>,
    /// Bytes the registry stores with sharing (unique compressed bytes).
    pub stored_bytes: u64,
    /// Bytes it would store without sharing (Σ per-image compressed size).
    pub unshared_bytes: u64,
}

impl LayerSharing {
    /// The paper's 1.8× layer-sharing dedup factor (85 TB / 47 TB).
    pub fn sharing_factor(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.unshared_bytes as f64 / self.stored_bytes as f64
        }
    }

    /// Fraction of layers with exactly `n` references.
    pub fn fraction_with_refs(&self, n: u64) -> f64 {
        if self.ref_counts.is_empty() {
            return 0.0;
        }
        self.ref_counts.iter().filter(|(_, c)| *c == n).count() as f64 / self.ref_counts.len() as f64
    }

    /// The most-referenced layers, `(digest, refs)`, highest first.
    pub fn top(&self, n: usize) -> &[(Digest, u64)] {
        &self.ref_counts[..n.min(self.ref_counts.len())]
    }

    /// Reference counts only (for CDF rendering).
    pub fn counts(&self) -> Vec<u64> {
        self.ref_counts.iter().map(|&(_, c)| c).collect()
    }
}

/// Counts, for each layer, how many images reference it (the paper counts
/// image references per §V-A), and the byte cost with/without sharing.
/// `layer_sizes` maps digest → compressed size.
pub fn layer_sharing(
    images: &[ImageLayers],
    layer_sizes: &FxHashMap<Digest, u64>,
) -> LayerSharing {
    let mut refs: FxHashMap<Digest, u64> = FxHashMap::default();
    let mut unshared_bytes = 0u64;
    for img in images {
        // An image referencing a layer twice still counts once (a manifest
        // lists distinct layers; guard anyway).
        let mut seen = std::collections::HashSet::new();
        for d in &img.layers {
            if seen.insert(*d) {
                *refs.entry(*d).or_insert(0) += 1;
                unshared_bytes += layer_sizes.get(d).copied().unwrap_or(0);
            }
        }
    }
    let stored_bytes = refs.keys().map(|d| layer_sizes.get(d).copied().unwrap_or(0)).sum();
    let mut ref_counts: Vec<(Digest, u64)> = refs.into_iter().collect();
    ref_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    LayerSharing { ref_counts, stored_bytes, unshared_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: u8) -> Digest {
        Digest::of(&[n])
    }

    fn setup() -> (Vec<ImageLayers>, FxHashMap<Digest, u64>) {
        // Layer 0 shared by 3 images, layer 1 by 2, layers 2..4 unique.
        let images = vec![
            ImageLayers { layers: vec![d(0), d(2)] },
            ImageLayers { layers: vec![d(0), d(1), d(3)] },
            ImageLayers { layers: vec![d(0), d(1), d(4)] },
        ];
        let mut sizes = FxHashMap::default();
        for i in 0..5u8 {
            sizes.insert(d(i), 100);
        }
        (images, sizes)
    }

    #[test]
    fn reference_counts() {
        let (images, sizes) = setup();
        let s = layer_sharing(&images, &sizes);
        assert_eq!(s.ref_counts[0], (d(0), 3));
        assert_eq!(s.ref_counts[1], (d(1), 2));
        assert_eq!(s.ref_counts.len(), 5);
        assert_eq!(s.fraction_with_refs(1), 3.0 / 5.0);
    }

    #[test]
    fn sharing_factor() {
        let (images, sizes) = setup();
        let s = layer_sharing(&images, &sizes);
        // 8 references x 100 bytes vs 5 unique x 100 bytes.
        assert_eq!(s.unshared_bytes, 800);
        assert_eq!(s.stored_bytes, 500);
        assert!((s.sharing_factor() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn duplicate_refs_within_image_count_once() {
        let images = vec![ImageLayers { layers: vec![d(0), d(0)] }];
        let mut sizes = FxHashMap::default();
        sizes.insert(d(0), 10);
        let s = layer_sharing(&images, &sizes);
        assert_eq!(s.ref_counts[0].1, 1);
        assert_eq!(s.unshared_bytes, 10);
    }

    #[test]
    fn empty_input() {
        let s = layer_sharing(&[], &FxHashMap::default());
        assert_eq!(s.sharing_factor(), 1.0);
        assert!(s.ref_counts.is_empty());
        assert_eq!(s.fraction_with_refs(1), 0.0);
    }

    #[test]
    fn top_n() {
        let (images, sizes) = setup();
        let s = layer_sharing(&images, &sizes);
        assert_eq!(s.top(2).len(), 2);
        assert_eq!(s.top(99).len(), 5);
        assert_eq!(s.top(1)[0].1, 3);
    }
}
