//! Redundancy analysis (§V of the paper).
//!
//! Four analyses over the analyzer's profiles:
//!
//! * [`layer_sharing`] — how often layers are referenced by multiple
//!   images, and the storage saved by content-addressed layer sharing
//!   (Fig. 23; the paper's 1.8×),
//! * [`file_dedup`] — file-level deduplication by count and capacity
//!   (Fig. 24 and the headline 31.5× / 6.9× numbers),
//! * [`growth`] — dedup ratio as a function of dataset size (Fig. 25),
//! * [`cross`] — cross-layer and cross-image duplicate fractions
//!   (Fig. 26),
//! * [`by_type`] — dedup ratio per type group and per specific type
//!   (Figs. 27–29).
//!
//! All counting passes run over a [`dhub_par::ShardedMap`] so multi-million
//! file populations aggregate in parallel.

pub mod by_type;
pub mod cross;
pub mod file_dedup;
pub mod growth;
pub mod layer_sharing;

pub use by_type::{dedup_by_group, dedup_by_kind, TypeDedupRow};
pub use cross::{cross_duplicates, CrossDuplicates};
pub use file_dedup::{file_dedup, FileDedupStats};
pub use growth::{dedup_growth, GrowthPoint};
pub use layer_sharing::{layer_sharing, LayerSharing};

use dhub_model::{Digest, LayerProfile};

/// The image→layers view the dedup analyses need (derived from manifests).
#[derive(Clone, Debug)]
pub struct ImageLayers {
    /// Layer digests referenced by the image's manifest.
    pub layers: Vec<Digest>,
}

/// Convenience: borrows profiles as a slice of references for analyses
/// that iterate layers.
pub fn profile_slice(map: &dhub_digest::FxHashMap<Digest, LayerProfile>) -> Vec<&LayerProfile> {
    let mut v: Vec<&LayerProfile> = map.values().collect();
    // Deterministic order for reproducible sampling.
    v.sort_by_key(|p| p.digest);
    v
}
