//! Cross-layer and cross-image file duplicates (Fig. 26).
//!
//! A file is a *cross-layer duplicate* if its content appears in more than
//! one distinct layer (layer sharing cannot eliminate it). The figure
//! plots, per layer, the fraction of its files that are cross-layer
//! duplicates — and likewise per image.

use crate::ImageLayers;
use dhub_digest::{FxHashMap, FxHashSet};
use dhub_model::{Digest, LayerProfile};
use dhub_par::ShardedMap;

/// Per-layer and per-image duplicate fractions.
#[derive(Clone, Debug)]
pub struct CrossDuplicates {
    /// For each non-empty layer: fraction of its files duplicated across
    /// layers (0..=1).
    pub layer_fractions: Vec<f64>,
    /// For each non-empty image: fraction of its files duplicated across
    /// images.
    pub image_fractions: Vec<f64>,
}

impl CrossDuplicates {
    fn quantile(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// p10 of layer fractions — the paper states "90 % of layers contain
    /// more than 97.6 % duplicated files", i.e. the 10th percentile.
    pub fn layer_p10(&self) -> f64 {
        let mut v = self.layer_fractions.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self::quantile(&v, 0.1)
    }

    /// p10 of image fractions (paper: 99.4 %).
    pub fn image_p10(&self) -> f64 {
        let mut v = self.image_fractions.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self::quantile(&v, 0.1)
    }
}

/// Computes both fraction distributions.
pub fn cross_duplicates(
    layers: &[&LayerProfile],
    images: &[ImageLayers],
    profiles: &FxHashMap<Digest, LayerProfile>,
    threads: usize,
) -> CrossDuplicates {
    // How many distinct layers contain each file digest.
    let layer_occurrences: ShardedMap<Digest, u32> = ShardedMap::new(64);
    dhub_par::par_for_each(threads, layers, |layer| {
        let mut seen = FxHashSet::default();
        for f in &layer.files {
            if seen.insert(f.digest) {
                layer_occurrences.update(f.digest, |c| *c += 1);
            }
        }
    });

    let layer_fractions: Vec<f64> = layers
        .iter()
        .filter(|l| !l.files.is_empty())
        .map(|l| {
            let dup = l
                .files
                .iter()
                .filter(|f| layer_occurrences.get_clone(&f.digest).unwrap_or(0) > 1)
                .count();
            dup as f64 / l.files.len() as f64
        })
        .collect();

    // How many distinct images contain each file digest.
    let image_occurrences: ShardedMap<Digest, u32> = ShardedMap::new(64);
    dhub_par::par_for_each(threads, images, |img| {
        let mut seen = FxHashSet::default();
        for ld in &img.layers {
            if let Some(lp) = profiles.get(ld) {
                for f in &lp.files {
                    if seen.insert(f.digest) {
                        image_occurrences.update(f.digest, |c| *c += 1);
                    }
                }
            }
        }
    });

    let image_fractions: Vec<f64> = images
        .iter()
        .filter_map(|img| {
            let mut total = 0usize;
            let mut dup = 0usize;
            for ld in &img.layers {
                if let Some(lp) = profiles.get(ld) {
                    for f in &lp.files {
                        total += 1;
                        if image_occurrences.get_clone(&f.digest).unwrap_or(0) > 1 {
                            dup += 1;
                        }
                    }
                }
            }
            if total == 0 {
                None
            } else {
                Some(dup as f64 / total as f64)
            }
        })
        .collect();

    CrossDuplicates { layer_fractions, image_fractions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::{FileKind, FileRecord};

    fn file(tag: &str) -> FileRecord {
        FileRecord { path: tag.into(), digest: Digest::of(tag.as_bytes()), kind: FileKind::AsciiText, size: 10 }
    }

    fn layer(id: u8, tags: &[&str]) -> LayerProfile {
        LayerProfile {
            digest: Digest::of(&[id]),
            fls: 10 * tags.len() as u64,
            cls: 5,
            dir_count: 1,
            file_count: tags.len() as u64,
            max_depth: 1,
            files: tags.iter().map(|t| file(t)).collect(),
        }
    }

    #[test]
    fn layer_fractions_computed() {
        // "shared" in both layers; "only1"/"only2" unique to one layer.
        let l1 = layer(1, &["shared", "only1"]);
        let l2 = layer(2, &["shared", "only2", "only2b"]);
        let mut profiles = FxHashMap::default();
        profiles.insert(l1.digest, l1.clone());
        profiles.insert(l2.digest, l2.clone());
        let cd = cross_duplicates(&[&l1, &l2], &[], &profiles, 2);
        let mut fr = cd.layer_fractions.clone();
        fr.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((fr[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((fr[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn same_digest_twice_in_one_layer_is_not_cross_layer() {
        let l1 = layer(1, &["dup", "dup"]);
        let l2 = layer(2, &["other"]);
        let profiles = FxHashMap::default();
        let cd = cross_duplicates(&[&l1, &l2], &[], &profiles, 1);
        // "dup" appears in only one distinct layer ⇒ not a cross-layer dup.
        assert_eq!(cd.layer_fractions, vec![0.0, 0.0]);
    }

    #[test]
    fn image_fractions_computed() {
        let l1 = layer(1, &["a", "b"]);
        let l2 = layer(2, &["a", "c"]);
        let l3 = layer(3, &["z"]);
        let mut profiles = FxHashMap::default();
        for l in [&l1, &l2, &l3] {
            profiles.insert(l.digest, l.clone());
        }
        // Image 1 = {l1}, image 2 = {l2, l3}: file "a" in both images.
        let images = vec![
            ImageLayers { layers: vec![l1.digest] },
            ImageLayers { layers: vec![l2.digest, l3.digest] },
        ];
        let cd = cross_duplicates(&[&l1, &l2, &l3], &images, &profiles, 2);
        let mut fr = cd.image_fractions.clone();
        fr.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Image 2: "a" of 3 files dup; image 1: "a" of 2 files dup.
        assert!((fr[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((fr[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_layers_excluded() {
        let l1 = layer(1, &[]);
        let profiles = FxHashMap::default();
        let cd = cross_duplicates(&[&l1], &[], &profiles, 1);
        assert!(cd.layer_fractions.is_empty());
        assert_eq!(cd.layer_p10(), 0.0);
    }

    #[test]
    fn p10_matches_paper_reading() {
        // 10 layers: 9 fully duplicated, 1 at 0.5 ⇒ p10 = 0.5.
        let shared = layer(0, &["s1", "s2"]);
        let mut layers = vec![shared.clone()];
        for i in 1..9 {
            layers.push(layer(i, &["s1", "s2"]));
        }
        layers.push(layer(9, &["s1", "u"]));
        let refs: Vec<&LayerProfile> = layers.iter().collect();
        let cd = cross_duplicates(&refs, &[], &FxHashMap::default(), 2);
        assert!((cd.layer_p10() - 0.5).abs() < 1e-9);
    }
}
