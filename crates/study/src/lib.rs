//! End-to-end study pipeline and figure renderers.
//!
//! This crate ties the substrates together exactly as §III of the paper
//! describes: crawl → download → analyze → characterize/dedup, and then
//! regenerates every table and figure of §IV–§V as a [`report::FigureReport`]
//! with paper-vs-measured anchor comparisons (collected in EXPERIMENTS.md).

pub mod carving;
pub mod db;
pub mod distributed;
pub mod figures;
pub mod latency;
pub mod pipeline;
pub mod report;
pub mod versions;

pub use pipeline::{
    run_study, run_study_http, run_study_http_with, run_study_streaming, run_study_streaming_with,
    run_study_with, StudyData,
};
pub use report::{Anchor, FigureReport};
