//! Multi-version analysis — the paper's first §VI future-work item:
//! "extend our analysis to multiple versions of Docker images and study
//! the dependencies among them".
//!
//! For every repository carrying more than one tag, versions are ordered
//! (`v1 < v2 < … < latest`) and adjacent pairs are compared: how many
//! layers the newer version reuses from the older (the incremental-build
//! dependency), and how many new compressed bytes each release adds.

use crate::report::{Anchor, FigureReport};
use dhub_model::RepoName;
use dhub_registry::Registry;
use dhub_stats::Ecdf;
use std::collections::HashSet;

/// Results of the cross-version study.
#[derive(Clone, Debug, Default)]
pub struct VersionStudy {
    /// Tags per repository (all repos, including single-tag ones).
    pub tags_per_repo: Vec<usize>,
    /// For each adjacent version pair: fraction of the newer version's
    /// layers reused from the older version.
    pub consecutive_reuse: Vec<f64>,
    /// New compressed bytes introduced by each release (delta CIS).
    pub delta_bytes: Vec<u64>,
}

impl VersionStudy {
    /// Repositories with more than one version.
    pub fn repos_with_history(&self) -> usize {
        self.tags_per_repo.iter().filter(|&&t| t > 1).count()
    }
}

/// Orders tags oldest-first: `v<k>` ascending by k, then `latest`,
/// then anything else lexicographically in between.
fn tag_order_key(tag: &str) -> (u8, u64, String) {
    if tag == "latest" {
        return (2, 0, String::new());
    }
    if let Some(num) = tag.strip_prefix('v').and_then(|n| n.parse::<u64>().ok()) {
        return (0, num, String::new());
    }
    (1, 0, tag.to_string())
}

/// Runs the cross-version analysis over `repos` (anonymous pulls; repos
/// rejecting them are skipped, as in the main study).
pub fn analyze_versions(registry: &Registry, repos: &[RepoName]) -> VersionStudy {
    let mut study = VersionStudy::default();
    for repo in repos {
        let Some(mut tags) = registry.tags(repo) else { continue };
        tags.sort_by_key(|t| tag_order_key(t));
        study.tags_per_repo.push(tags.len());
        if tags.len() < 2 {
            continue;
        }
        let manifests: Vec<_> = tags
            .iter()
            .filter_map(|t| registry.get_manifest(repo, t, false).ok().map(|s| s.manifest))
            .collect();
        for pair in manifests.windows(2) {
            let (older, newer) = (&pair[0], &pair[1]);
            let old_set: HashSet<_> = older.layers.iter().map(|l| l.digest).collect();
            let reused = newer.layers.iter().filter(|l| old_set.contains(&l.digest)).count();
            if !newer.layers.is_empty() {
                study.consecutive_reuse.push(reused as f64 / newer.layers.len() as f64);
            }
            let delta: u64 = newer
                .layers
                .iter()
                .filter(|l| !old_set.contains(&l.digest))
                .map(|l| l.size)
                .sum();
            study.delta_bytes.push(delta);
        }
    }
    study
}

/// Extension figure V1 — version counts and cross-version layer reuse.
pub fn ext_v1(study: &VersionStudy, size_scale: u64) -> FigureReport {
    let tags = Ecdf::from_u64(study.tags_per_repo.iter().map(|&t| t as u64));
    let mut rows = crate::report::cdf_rows(&tags, "tags/repo");
    if !study.consecutive_reuse.is_empty() {
        let reuse = Ecdf::new(study.consecutive_reuse.clone());
        rows.extend(crate::report::cdf_rows(&reuse, "layer reuse"));
        let delta = Ecdf::new(
            study.delta_bytes.iter().map(|&b| b as f64 * size_scale as f64).collect(),
        );
        rows.extend(crate::report::cdf_rows(&delta, "release delta(B)"));
    }

    let median_reuse = if study.consecutive_reuse.is_empty() {
        0.0
    } else {
        Ecdf::new(study.consecutive_reuse.clone()).median()
    };
    let multi = study.repos_with_history() as f64 / study.tags_per_repo.len().max(1) as f64;

    FigureReport {
        id: "Ext. V1",
        title: "multi-version layer dependencies (§VI extension)".into(),
        rows,
        anchors: vec![
            // No paper values exist (this is their future work); the
            // anchors record the extension's own headline numbers against
            // the generator's design targets.
            Anchor::new("repos with version history", 0.45, multi),
            Anchor::new("median cross-version layer reuse", 0.85, median_reuse),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_synth::{generate_hub, SynthConfig};

    #[test]
    fn tag_ordering() {
        let mut tags = vec!["latest".to_string(), "v2".to_string(), "v1".to_string(), "v10".to_string()];
        tags.sort_by_key(|t| tag_order_key(t));
        assert_eq!(tags, vec!["v1", "v2", "v10", "latest"]);
    }

    #[test]
    fn version_analysis_on_synthetic_hub() {
        let hub = generate_hub(&SynthConfig::tiny(31).with_repos(60));
        let repos = hub.registry.repo_names();
        let study = analyze_versions(&hub.registry, &repos);
        assert_eq!(study.tags_per_repo.len(), repos.len());
        assert!(study.repos_with_history() > 0, "expect some version histories");
        assert_eq!(study.consecutive_reuse.len(), study.delta_bytes.len());
        // Incremental rebuilds: adjacent versions share most layers.
        let mean_reuse: f64 =
            study.consecutive_reuse.iter().sum::<f64>() / study.consecutive_reuse.len() as f64;
        assert!(mean_reuse > 0.6, "mean reuse {mean_reuse}");
        for &r in &study.consecutive_reuse {
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn ext_figure_renders() {
        let hub = generate_hub(&SynthConfig::tiny(32).with_repos(40));
        let repos = hub.registry.repo_names();
        let study = analyze_versions(&hub.registry, &repos);
        let fig = ext_v1(&study, hub.config.size_scale);
        assert!(fig.render().contains("Ext. V1"));
        assert!(!fig.rows.is_empty());
    }

    #[test]
    fn auth_repos_skipped() {
        let hub = generate_hub(&SynthConfig::tiny(33).with_repos(60));
        let study = analyze_versions(&hub.registry, &hub.truth.auth_repos);
        // Auth repos reject anonymous pulls: tags listed but no manifests,
        // so no reuse samples come out of them.
        assert!(study.consecutive_reuse.is_empty());
    }
}
