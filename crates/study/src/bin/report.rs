//! Emits the complete reproduction report (Table 1, Figs. 3–29, Table 2,
//! plus the §VI extension figures) for a given scale — the tool that
//! generates EXPERIMENTS.md's numbers.
//!
//! ```sh
//! cargo run --release -p dhub-study --bin report -- [repos] [seed] [size_scale]
//! ```

use dhub_study::figures::all_figures;
use dhub_study::carving::ext_c1;
use dhub_study::latency::ext_l1;
use dhub_study::run_study;
use dhub_study::versions::{analyze_versions, ext_v1};
use dhub_synth::{generate_hub, SynthConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let repos: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20170530);
    let size_scale: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);

    let mut cfg = SynthConfig::default_scale(seed).with_repos(repos);
    cfg.size_scale = size_scale;

    eprintln!("generating hub: repos={repos} seed={seed} size_scale=1/{size_scale}");
    let t = std::time::Instant::now();
    let hub = generate_hub(&cfg);
    eprintln!(
        "hub ready in {:.1?} ({} blobs, {:.1} MB stored)",
        t.elapsed(),
        hub.registry.stats().unique_blobs,
        hub.registry.stats().stored_bytes as f64 / 1e6
    );

    let t = std::time::Instant::now();
    let data = run_study(&hub, dhub_par::default_threads());
    eprintln!("pipeline done in {:.1?}", t.elapsed());

    println!("# Reproduction report — repos={repos} seed={seed} size_scale=1/{size_scale}");
    println!();
    for fig in all_figures(&data) {
        println!("{}", fig.render());
    }

    // §VI extensions.
    let repos_list = hub.registry.repo_names();
    let versions = analyze_versions(&hub.registry, &repos_list);
    println!("{}", ext_v1(&versions, cfg.size_scale).render());
    println!("{}", ext_l1(&data).render());
    println!("{}", ext_c1(&data).render());
}
