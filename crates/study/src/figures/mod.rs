//! One renderer per paper artifact (Table 1, Figs. 3–29).
//!
//! Every function takes the pipeline's [`StudyData`] and returns a
//! [`FigureReport`]: the same series the paper plots, plus paper-vs-measured
//! anchors. Size-valued measurements are rescaled by `size_scale` back to
//! paper units before comparison.

mod dedup;
mod files;
mod images;
mod layers;

pub use dedup::{fig23, fig24, fig25, fig26, fig27, fig28, fig29, table2};
pub use files::{fig13, fig14, fig15, fig16, fig17, fig18, fig19, fig20, fig21, fig22, TypeCensus};
pub use images::{fig08, fig09, fig10, fig11, fig12};
pub use layers::{fig03, fig04, fig05, fig06, fig07};

use crate::pipeline::StudyData;
use crate::report::{Anchor, FigureReport};

/// Table 1-style dataset summary (§III).
pub fn table1(data: &StudyData) -> FigureReport {
    let raw = data.crawl.raw_results as f64;
    let distinct = data.crawl.distinct_repos as f64;
    let attempted = distinct;
    let ok = data.download.images_downloaded as f64;
    let failures = data.download.failures() as f64;
    let auth_share = if failures > 0.0 { data.download.failed_auth as f64 / failures } else { 0.0 };
    let layers_per_image =
        if ok > 0.0 { data.download.unique_layers as f64 / ok } else { 0.0 };
    let total_files: u64 = data.layer_slice().iter().map(|l| l.file_count).sum();

    let rows = vec![
        format!("search results (raw)        : {}", data.crawl.raw_results),
        format!("distinct repositories       : {}", data.crawl.distinct_repos),
        format!("images downloaded           : {}", data.download.images_downloaded),
        format!("images failed               : {}", data.download.failures()),
        format!("  - auth required           : {}", data.download.failed_auth),
        format!("  - no latest tag           : {}", data.download.failed_no_latest),
        format!("unique compressed layers    : {}", data.download.unique_layers),
        format!("layer fetches skipped (dedup): {}", data.download.layer_fetches_skipped),
        format!("transient retries           : {}", data.download.retries),
        format!("  - digest-verify refetches : {}", data.download.corrupt_retries),
        format!("retry give-ups              : {}", data.download.gave_up),
        format!("files analyzed              : {total_files}"),
        format!(
            "layer bytes analyzed        : {}",
            data.layer_slice().iter().map(|l| l.cls).sum::<u64>()
        ),
        format!(
            "compressed bytes (paper-scale): {:.1} GB",
            data.download.bytes_fetched as f64 * data.size_scale as f64 / 1e9
        ),
    ];
    FigureReport {
        id: "Table 1",
        title: "dataset summary (§III)".into(),
        rows,
        anchors: vec![
            Anchor::new("search duplication factor", 634_412.0 / 457_627.0, raw / distinct),
            Anchor::new("downloaded fraction", 355_319.0 / 457_627.0, ok / attempted),
            Anchor::new("auth share of failures", 0.13, auth_share),
            Anchor::new("unique layers per image", 1_792_609.0 / 355_319.0, layers_per_image),
        ],
    }
}

/// All artifacts in paper order.
pub fn all_figures(data: &StudyData) -> Vec<FigureReport> {
    vec![
        table1(data),
        fig03(data),
        fig04(data),
        fig05(data),
        fig06(data),
        fig07(data),
        fig08(data),
        fig09(data),
        fig10(data),
        fig11(data),
        fig12(data),
        fig13(data),
        fig14(data),
        fig15(data),
        fig16(data),
        fig17(data),
        fig18(data),
        fig19(data),
        fig20(data),
        fig21(data),
        fig22(data),
        fig23(data),
        fig24(data),
        fig25(data),
        fig26(data),
        fig27(data),
        fig28(data),
        fig29(data),
        table2(data),
    ]
}
