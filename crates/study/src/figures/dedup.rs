//! Deduplication figures (Figs. 23–29 and the §V-B headline numbers).

use crate::pipeline::StudyData;
use crate::report::{Anchor, FigureReport};
use dhub_dedup::{
    cross_duplicates, dedup_by_group, dedup_by_kind, dedup_growth, file_dedup, layer_sharing,
};
use dhub_model::{FileKind, TypeGroup};
use dhub_par::default_threads;
use dhub_stats::Ecdf;

/// Fig. 23 — layer reference counts and the layer-sharing factor.
pub fn fig23(data: &StudyData) -> FigureReport {
    let sizes = data.layer_sizes();
    let sharing = layer_sharing(&data.image_layers, &sizes);
    let counts = sharing.counts();
    let e = Ecdf::from_u64(counts.iter().copied());

    let top_is_empty = sharing
        .top(1)
        .first()
        .map(|(d, _)| data.layers.get(d).map(|p| p.file_count == 0).unwrap_or(false))
        .unwrap_or(false);
    let over_25 =
        counts.iter().filter(|&&c| c > 25).count() as f64 / counts.len().max(1) as f64;

    let mut rows = vec![
        format!("unique layers referenced      : {}", counts.len()),
        format!("stored bytes (with sharing)   : {}", sharing.stored_bytes),
        format!("bytes without sharing         : {}", sharing.unshared_bytes),
        format!("sharing factor                : {:.2}x", sharing.sharing_factor()),
    ];
    for (d, c) in sharing.top(5) {
        let files = data.layers.get(d).map(|p| p.file_count).unwrap_or(0);
        rows.push(format!("top layer {d:?} refs {c} ({files} files)"));
    }

    FigureReport {
        id: "Fig. 23",
        title: "layer reference counts / layer sharing".into(),
        rows,
        anchors: vec![
            Anchor::new("fraction referenced once", 0.90, sharing.fraction_with_refs(1)),
            Anchor::new("fraction referenced twice", 0.05, sharing.fraction_with_refs(2)),
            Anchor::new("fraction referenced >25 times", 0.01, over_25),
            Anchor::new("top layer is the empty layer", 1.0, if top_is_empty { 1.0 } else { 0.0 }),
            Anchor::new("layer-sharing dedup factor", 85.0 / 47.0, sharing.sharing_factor()),
            Anchor::new("p99 reference count", 25.0, e.quantile(0.99)),
        ],
    }
}

/// Fig. 24 — file repeat counts.
pub fn fig24(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    let stats = file_dedup(&layers, default_threads());

    // Per-unique-file CDF of copy counts. (The paper's "50 % of files have
    // exactly 4 copies" is over unique files: an instance-weighted reading
    // would contradict its own 31.5× mean copies.)
    let hist = stats.repeat_histogram();
    let mut per_file = stats.repeat_counts.clone();
    per_file.sort_unstable();
    let quantile = |p: f64| -> u64 {
        if per_file.is_empty() {
            return 0;
        }
        let rank = ((p * per_file.len() as f64).ceil() as usize).clamp(1, per_file.len());
        per_file[rank - 1]
    };

    let mut rows: Vec<String> = hist
        .iter()
        .take(20)
        .map(|(copies, n)| format!("{copies} copies : {n} file instances"))
        .collect();
    rows.push(format!(
        "most-repeated file: {} copies, {} bytes",
        stats.max_repeat, stats.max_repeat_size
    ));

    FigureReport {
        id: "Fig. 24",
        title: "file repeat counts".into(),
        rows,
        anchors: vec![
            Anchor::new("fraction of instances with >1 copy", 0.994, stats.duplicated_instance_fraction()),
            Anchor::new("median copies per unique file", 4.0, quantile(0.5) as f64),
            Anchor::new("p90 copies per unique file", 10.0, quantile(0.9) as f64),
            Anchor::new(
                "most-repeated file is empty",
                1.0,
                if stats.max_repeat_size == 0 { 1.0 } else { 0.0 },
            ),
        ],
    }
}

/// Fig. 25 — dedup ratio growth with dataset size.
pub fn fig25(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    let sizes = dhub_dedup::growth::default_sample_sizes(layers.len());
    let points = dedup_growth(&layers, &sizes, data.seed ^ 0x617, default_threads());

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!("{:>8} layers : count {:>6.2}x  capacity {:>6.2}x", p.layers, p.count_ratio, p.capacity_ratio)
        })
        .collect();
    let first = points.first();
    let last = points.last();
    let growth = match (first, last) {
        (Some(f), Some(l)) if f.count_ratio > 0.0 => l.count_ratio / f.count_ratio,
        _ => 1.0,
    };

    FigureReport {
        id: "Fig. 25",
        title: "dedup ratio vs dataset size".into(),
        rows,
        anchors: vec![
            // The paper's curve grows 3.6×→31.5× (count) across 1k→1.7M
            // layers; at our population the same mechanism produces
            // monotone growth with a smaller span.
            Anchor::new("count-ratio growth (last/first)", 31.5 / 3.6, growth),
            Anchor::new("full-dataset count ratio", 31.5, last.map(|p| p.count_ratio).unwrap_or(0.0)),
            Anchor::new("full-dataset capacity ratio", 6.9, last.map(|p| p.capacity_ratio).unwrap_or(0.0)),
        ],
    }
}

/// Fig. 26 — cross-layer and cross-image duplicate fractions.
pub fn fig26(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    let cd = cross_duplicates(&layers, &data.image_layers, &data.layers, default_threads());
    let le = Ecdf::new(cd.layer_fractions.clone());
    let ie = Ecdf::new(cd.image_fractions.clone());

    let mut rows = crate::report::cdf_rows(&le, "layer dup fraction");
    rows.extend(crate::report::cdf_rows(&ie, "image dup fraction"));

    FigureReport {
        id: "Fig. 26",
        title: "cross-layer / cross-image file duplicates".into(),
        rows,
        anchors: vec![
            Anchor::new("p10 layer duplicate fraction", 0.976, cd.layer_p10()),
            Anchor::new("p10 image duplicate fraction", 0.994, cd.image_p10()),
        ],
    }
}

fn redundancy_anchor(
    rows: &[(TypeGroup, dhub_dedup::TypeDedupRow)],
    g: TypeGroup,
    paper: f64,
) -> Anchor {
    let r = rows
        .iter()
        .find(|(x, _)| *x == g)
        .map(|(_, row)| row.capacity_redundancy())
        .unwrap_or(0.0);
    Anchor::new(format!("{} capacity redundancy", g.label()), paper, r)
}

/// Fig. 27 — dedup by type group. The paper's percentages are capacity
/// redundancies (their weighted mean reproduces the overall 85.69 %,
/// which equals 1 − 1/6.9).
pub fn fig27(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    let rows_data = dedup_by_group(&layers, default_threads());
    let stats = file_dedup(&layers, default_threads());

    let rows: Vec<String> = rows_data
        .iter()
        .map(|(g, r)| {
            format!(
                "{:<6} bytes {:>14}  unique bytes {:>14}  capacity redundancy {:>5.1} %  count redundancy {:>5.1} %",
                g.label(),
                r.bytes,
                r.unique_bytes,
                r.capacity_redundancy() * 100.0,
                r.redundancy() * 100.0
            )
        })
        .collect();

    let overall_cap = 1.0 - stats.unique_bytes as f64 / stats.total_bytes.max(1) as f64;
    FigureReport {
        id: "Fig. 27",
        title: "dedup by type group".into(),
        rows,
        anchors: vec![
            Anchor::new("overall capacity redundancy", 0.8569, overall_cap),
            redundancy_anchor(&rows_data, TypeGroup::SourceCode, 0.968),
            redundancy_anchor(&rows_data, TypeGroup::Scripts, 0.98),
            redundancy_anchor(&rows_data, TypeGroup::Documents, 0.92),
            redundancy_anchor(&rows_data, TypeGroup::Eol, 0.86),
            redundancy_anchor(&rows_data, TypeGroup::Archival, 0.86),
            redundancy_anchor(&rows_data, TypeGroup::Database, 0.76),
        ],
    }
}

fn kind_redundancy_anchor(
    rows: &[(FileKind, dhub_dedup::TypeDedupRow)],
    k: FileKind,
    paper: f64,
) -> Anchor {
    let r = rows
        .iter()
        .find(|(x, _)| *x == k)
        .map(|(_, row)| row.capacity_redundancy())
        .unwrap_or(0.0);
    Anchor::new(format!("{} capacity redundancy", k.label()), paper, r)
}

/// Fig. 28 — dedup within the EOL group.
pub fn fig28(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    let rows_data = dedup_by_kind(&layers, TypeGroup::Eol, default_threads());
    let rows = rows_data
        .iter()
        .map(|(k, r)| format!("{:<14} capacity redundancy {:>5.1} %", k.label(), r.capacity_redundancy() * 100.0))
        .collect();
    FigureReport {
        id: "Fig. 28",
        title: "dedup within EOL".into(),
        rows,
        anchors: vec![
            kind_redundancy_anchor(&rows_data, FileKind::Elf, 0.87),
            kind_redundancy_anchor(&rows_data, FileKind::PeExecutable, 0.87),
            kind_redundancy_anchor(&rows_data, FileKind::Library, 0.535),
            kind_redundancy_anchor(&rows_data, FileKind::Coff, 0.61),
            kind_redundancy_anchor(&rows_data, FileKind::PythonBytecode, 0.87),
        ],
    }
}

/// Fig. 29 — dedup within source code.
pub fn fig29(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    let rows_data = dedup_by_kind(&layers, TypeGroup::SourceCode, default_threads());
    let c_share = {
        let total: u64 = rows_data.iter().map(|(_, r)| r.bytes - r.unique_bytes).sum();
        let c = rows_data
            .iter()
            .find(|(k, _)| *k == FileKind::CSource)
            .map(|(_, r)| r.bytes - r.unique_bytes)
            .unwrap_or(0);
        c as f64 / total.max(1) as f64
    };
    let rows = rows_data
        .iter()
        .map(|(k, r)| format!("{:<16} capacity redundancy {:>5.1} %", k.label(), r.capacity_redundancy() * 100.0))
        .collect();
    FigureReport {
        id: "Fig. 29",
        title: "dedup within source code".into(),
        rows,
        anchors: vec![
            kind_redundancy_anchor(&rows_data, FileKind::CSource, 0.95),
            kind_redundancy_anchor(&rows_data, FileKind::LispScheme, 0.72),
            Anchor::new("C/C++ share of redundant SC bytes", 0.77, c_share),
        ],
    }
}

/// Table 2 — the headline dedup numbers of §V-B.
pub fn table2(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    let stats = file_dedup(&layers, default_threads());
    let rows = vec![
        format!("file instances       : {}", stats.total_instances),
        format!("unique files         : {}", stats.unique_files),
        format!("logical bytes        : {}", stats.total_bytes),
        format!("bytes after dedup    : {}", stats.unique_bytes),
        format!("count dedup ratio    : {:.2}x", stats.count_ratio()),
        format!("capacity dedup ratio : {:.2}x", stats.capacity_ratio()),
        format!("max repeat count     : {}", stats.max_repeat),
    ];
    FigureReport {
        id: "Table 2",
        title: "file-level dedup headline (§V-B)".into(),
        rows,
        anchors: vec![
            Anchor::new("unique file fraction", 0.032, stats.unique_fraction()),
            Anchor::new("count dedup ratio", 31.5, stats.count_ratio()),
            Anchor::new("capacity dedup ratio", 6.9, stats.capacity_ratio()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_study;
    use dhub_synth::{generate_hub, SynthConfig};
    use std::sync::OnceLock;

    fn data() -> &'static StudyData {
        static DATA: OnceLock<StudyData> = OnceLock::new();
        DATA.get_or_init(|| {
            let hub = generate_hub(&SynthConfig::default_scale(24).with_repos(80));
            run_study(&hub, 4)
        })
    }

    #[test]
    fn fig23_sharing_shape() {
        let f = fig23(data());
        let once = f.anchors.iter().find(|a| a.name.contains("once")).unwrap();
        assert!(once.measured > 0.5, "refcount-1 fraction {}", once.measured);
        let top_empty = f.anchors.iter().find(|a| a.name.contains("empty layer")).unwrap();
        assert_eq!(top_empty.measured, 1.0, "most-referenced layer must be the empty layer");
        let factor = f.anchors.iter().find(|a| a.name.contains("sharing dedup")).unwrap();
        assert!(factor.measured > 1.1, "sharing factor {}", factor.measured);
    }

    #[test]
    fn fig24_duplication_dominates() {
        let f = fig24(data());
        for r in &f.rows {
            eprintln!("{r}");
        }
        let dup = f.anchors.iter().find(|a| a.name.contains(">1 copy")).unwrap();
        assert!(dup.measured > 0.7, "duplicated instances {}", dup.measured);
        let max_empty = f.anchors.iter().find(|a| a.name.contains("empty")).unwrap();
        assert_eq!(max_empty.measured, 1.0);
    }

    #[test]
    fn fig25_growth_monotone() {
        let f = fig25(data());
        assert!(f.rows.len() >= 3);
        let growth = f.anchors.iter().find(|a| a.name.contains("growth")).unwrap();
        assert!(growth.measured > 1.2, "dedup should grow with scale: {}", growth.measured);
    }

    #[test]
    fn fig26_high_duplicate_fractions() {
        let f = fig26(data());
        let layer_p10 = &f.anchors[0];
        assert!(layer_p10.measured > 0.5, "layer p10 {}", layer_p10.measured);
        let image_p10 = &f.anchors[1];
        assert!(image_p10.measured >= layer_p10.measured * 0.9, "image p10 {}", image_p10.measured);
    }

    #[test]
    fn fig27_group_ordering_holds() {
        let f = fig27(data());
        let get = |label: &str| {
            f.anchors.iter().find(|a| a.name.starts_with(label)).map(|a| a.measured).unwrap()
        };
        // Scripts/source dedup better than DB, as in the paper.
        assert!(get("Scr.") > get("DB."), "scripts {} vs db {}", get("Scr."), get("DB."));
        assert!(get("SC.") > get("DB."));
    }

    #[test]
    fn fig28_libraries_dedup_worst() {
        let f = fig28(data());
        let get = |label: &str| {
            f.anchors.iter().find(|a| a.name.starts_with(label)).map(|a| a.measured).unwrap()
        };
        assert!(get("Lib.") < get("ELF"), "lib {} vs elf {}", get("Lib."), get("ELF"));
    }

    #[test]
    fn table2_consistency() {
        let f = table2(data());
        let unique_frac = &f.anchors[0];
        let count_ratio = &f.anchors[1];
        assert!((unique_frac.measured * count_ratio.measured - 1.0).abs() < 1e-9);
        assert!(count_ratio.measured > 2.0, "count dedup {}", count_ratio.measured);
    }

    #[test]
    fn all_dedup_figures_render() {
        let d = data();
        for f in [fig23(d), fig24(d), fig25(d), fig26(d), fig27(d), fig28(d), fig29(d), table2(d)] {
            assert!(!f.render().is_empty());
        }
    }
}
