//! Layer characterization figures (Figs. 3–7, §IV-A).

use crate::pipeline::StudyData;
use crate::report::{cdf_rows, Anchor, FigureReport};
use dhub_stats::{Ecdf, Histogram, LogHistogram};

/// Fig. 3 — layer size distribution (CLS and FLS).
pub fn fig03(data: &StudyData) -> FigureReport {
    let scale = data.size_scale as f64;
    let layers = data.layer_slice();
    let cls = Ecdf::new(layers.iter().map(|l| l.cls as f64 * scale).collect());
    let fls = Ecdf::new(layers.iter().map(|l| l.fls as f64 * scale).collect());

    let mut rows = cdf_rows(&cls, "CLS(B)");
    rows.extend(cdf_rows(&fls, "FLS(B)"));
    // Fig. 3b: frequencies in the 0–128 MB range (paper-scale), log bins.
    let mut hist = LogHistogram::new();
    for l in &layers {
        hist.record((l.cls as f64 * scale) as u64);
    }
    rows.extend(
        hist.rows().iter().map(|(lo, hi, c)| format!("CLS bin [{lo}, {hi}) : {c} layers")),
    );

    FigureReport {
        id: "Fig. 3",
        title: "layer size distribution (CLS, FLS)".into(),
        rows,
        anchors: vec![
            Anchor::new("median FLS (bytes)", 4.0e6, fls.median()),
            Anchor::new("p90 FLS (bytes)", 177.0e6, fls.quantile(0.9)),
            Anchor::new("median CLS (bytes)", 4.0e6, cls.median()),
            Anchor::new("p90 CLS (bytes)", 63.0e6, cls.quantile(0.9)),
        ],
    }
}

/// Fig. 4 — FLS-to-CLS compression ratio.
pub fn fig04(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    // The paper computes the ratio per layer; layers with no file bytes
    // have no meaningful ratio and are excluded from the ratio CDF.
    let ratios: Vec<f64> = layers
        .iter()
        .filter(|l| l.fls > 0)
        .map(|l| l.compression_ratio())
        .collect();
    let e = Ecdf::new(ratios);
    let mut rows = cdf_rows(&e, "FLS/CLS");
    let mut hist = Histogram::new(0.0, 10.0, 10);
    hist.extend(e.samples().iter().copied());
    rows.extend(hist.rows().iter().map(|(lo, hi, c)| format!("ratio [{lo:.0},{hi:.0}) : {c} layers")));

    FigureReport {
        id: "Fig. 4",
        title: "layer compression ratio (FLS-to-CLS)".into(),
        rows,
        anchors: vec![
            Anchor::new("median compression ratio", 2.6, e.median()),
            Anchor::new("p90 compression ratio", 4.0, e.quantile(0.9)),
            Anchor::new("max compression ratio", 1026.0, e.max()),
        ],
    }
}

/// Fig. 5 — file count per layer.
pub fn fig05(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    let e = Ecdf::from_u64(layers.iter().map(|l| l.file_count));
    let zero = layers.iter().filter(|l| l.file_count == 0).count() as f64 / layers.len() as f64;
    let one = layers.iter().filter(|l| l.file_count == 1).count() as f64 / layers.len() as f64;

    FigureReport {
        id: "Fig. 5",
        title: "files per layer".into(),
        rows: cdf_rows(&e, "files"),
        anchors: vec![
            Anchor::new("median files per layer", 30.0, e.median()),
            Anchor::new("p90 files per layer", 7410.0, e.quantile(0.9)),
            Anchor::new("fraction of single-file layers", 0.27, one),
            Anchor::new("fraction of empty layers", 0.07, zero),
            Anchor::new("max files in a layer", 826_196.0, e.max()),
        ],
    }
}

/// Fig. 6 — directory count per layer.
pub fn fig06(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    // The paper reports a minimum of one directory; its analyzer counts
    // the layer root. Skip fully empty layers for the minimum anchor.
    let e = Ecdf::from_u64(layers.iter().map(|l| l.dir_count));
    let nonempty_min = layers.iter().map(|l| l.dir_count).filter(|&d| d > 0).min().unwrap_or(0);

    FigureReport {
        id: "Fig. 6",
        title: "directories per layer".into(),
        rows: cdf_rows(&e, "dirs"),
        anchors: vec![
            Anchor::new("median dirs per layer", 11.0, e.median()),
            Anchor::new("p90 dirs per layer", 826.0, e.quantile(0.9)),
            Anchor::new("min dirs (non-empty layers)", 1.0, nonempty_min as f64),
            Anchor::new("max dirs in a layer", 111_940.0, e.max()),
        ],
    }
}

/// Fig. 7 — maximum directory depth per layer.
pub fn fig07(data: &StudyData) -> FigureReport {
    let layers = data.layer_slice();
    let depths: Vec<u64> = layers.iter().filter(|l| l.dir_count > 0).map(|l| l.max_depth).collect();
    let e = Ecdf::from_u64(depths.iter().copied());
    let mut hist = Histogram::new(0.0, 16.0, 16);
    hist.extend(depths.iter().map(|&d| d as f64));
    let mode = hist.mode_bin().map(|(_, lo)| lo).unwrap_or(0.0);

    let mut rows = cdf_rows(&e, "depth");
    rows.extend(
        hist.rows()
            .iter()
            .filter(|(_, _, c)| *c > 0)
            .map(|(lo, _, c)| format!("depth {lo:.0} : {c} layers")),
    );

    FigureReport {
        id: "Fig. 7",
        title: "layer directory depth".into(),
        rows,
        anchors: vec![
            Anchor::new("median max depth", 4.0, e.median()),
            Anchor::new("p90 max depth", 10.0, e.quantile(0.9)),
            Anchor::new("modal depth", 3.0, mode),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_study;
    use dhub_synth::{generate_hub, SynthConfig};
    use std::sync::OnceLock;

    fn data() -> &'static StudyData {
        static DATA: OnceLock<StudyData> = OnceLock::new();
        DATA.get_or_init(|| {
            let hub = generate_hub(&SynthConfig::default_scale(21).with_repos(60));
            run_study(&hub, 4)
        })
    }

    #[test]
    fn fig03_has_both_series() {
        let f = fig03(data());
        assert!(f.rows.iter().any(|r| r.contains("CLS")));
        assert!(f.rows.iter().any(|r| r.contains("FLS")));
        assert_eq!(f.anchors.len(), 4);
        assert!(f.anchors[0].measured > 0.0);
    }

    #[test]
    fn fig04_ratios_positive() {
        let f = fig04(data());
        let median = &f.anchors[0];
        assert!(median.measured > 0.8, "median ratio {}", median.measured);
        assert!(median.measured < 20.0);
    }

    #[test]
    fn fig05_fractions_sane() {
        let f = fig05(data());
        let one = f.anchors.iter().find(|a| a.name.contains("single-file")).unwrap();
        assert!((0.1..0.45).contains(&one.measured), "single-file {}", one.measured);
        let zero = f.anchors.iter().find(|a| a.name.contains("empty")).unwrap();
        assert!(zero.measured < 0.2);
    }

    #[test]
    fn fig06_min_dirs_is_one() {
        let f = fig06(data());
        let min = f.anchors.iter().find(|a| a.name.contains("min dirs")).unwrap();
        assert_eq!(min.measured, 1.0);
    }

    #[test]
    fn fig07_mode_near_three() {
        let f = fig07(data());
        let mode = f.anchors.iter().find(|a| a.name.contains("modal")).unwrap();
        assert!((2.0..=5.0).contains(&mode.measured), "mode {}", mode.measured);
    }

    #[test]
    fn reports_render() {
        for f in [fig03(data()), fig04(data()), fig05(data()), fig06(data()), fig07(data())] {
            let text = f.render();
            assert!(text.contains(f.id));
            assert!(text.contains("anchors"));
        }
    }
}
