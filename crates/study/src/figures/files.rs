//! File characterization figures (Figs. 13–22, §IV-C).

use crate::pipeline::StudyData;
use crate::report::{Anchor, FigureReport};
use dhub_model::{FileKind, TypeGroup};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-kind census over every file instance in every unique layer.
pub struct TypeCensus {
    /// Indexed by `FileKind::index()`: (instances, bytes).
    counts: Vec<u64>,
    bytes: Vec<u64>,
}

impl TypeCensus {
    /// Builds the census in parallel.
    pub fn build(data: &StudyData) -> TypeCensus {
        let counts: Vec<AtomicU64> = (0..FileKind::COUNT).map(|_| AtomicU64::new(0)).collect();
        let bytes: Vec<AtomicU64> = (0..FileKind::COUNT).map(|_| AtomicU64::new(0)).collect();
        let layers = data.layer_slice();
        dhub_par::par_for_each(dhub_par::default_threads(), &layers, |layer| {
            for f in &layer.files {
                counts[f.kind.index()].fetch_add(1, Ordering::Relaxed);
                bytes[f.kind.index()].fetch_add(f.size, Ordering::Relaxed);
            }
        });
        TypeCensus {
            counts: counts.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            bytes: bytes.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Instances of one kind.
    pub fn count(&self, k: FileKind) -> u64 {
        self.counts[k.index()]
    }

    /// Logical bytes of one kind.
    pub fn bytes(&self, k: FileKind) -> u64 {
        self.bytes[k.index()]
    }

    /// Total instances across kinds.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total logical bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    fn kinds_of(group: TypeGroup) -> Vec<FileKind> {
        let mut v: Vec<FileKind> =
            FileKind::ALL.iter().copied().filter(|k| k.group() == group).collect();
        for extra in [FileKind::Video, FileKind::OtherBinary, FileKind::Empty] {
            if extra.group() == group {
                v.push(extra);
            }
        }
        v
    }

    /// (instances, bytes) for a whole group.
    pub fn group_totals(&self, group: TypeGroup) -> (u64, u64) {
        Self::kinds_of(group)
            .into_iter()
            .fold((0, 0), |(c, b), k| (c + self.count(k), b + self.bytes(k)))
    }

    /// Count share of a group among all files.
    pub fn group_count_share(&self, group: TypeGroup) -> f64 {
        self.group_totals(group).0 as f64 / self.total_count().max(1) as f64
    }

    /// Capacity share of a group.
    pub fn group_capacity_share(&self, group: TypeGroup) -> f64 {
        self.group_totals(group).1 as f64 / self.total_bytes().max(1) as f64
    }

    /// Count share of a kind *within its group*.
    pub fn kind_count_share_in_group(&self, k: FileKind) -> f64 {
        let (gc, _) = self.group_totals(k.group());
        self.count(k) as f64 / gc.max(1) as f64
    }

    /// Capacity share of a kind within its group.
    pub fn kind_capacity_share_in_group(&self, k: FileKind) -> f64 {
        let (_, gb) = self.group_totals(k.group());
        self.bytes(k) as f64 / gb.max(1) as f64
    }

    /// Average file size of a kind, in paper-scale bytes.
    pub fn kind_avg_size(&self, k: FileKind, size_scale: u64) -> f64 {
        let c = self.count(k);
        if c == 0 {
            0.0
        } else {
            self.bytes(k) as f64 * size_scale as f64 / c as f64
        }
    }

    /// Average file size of a group, in paper-scale bytes.
    pub fn group_avg_size(&self, g: TypeGroup, size_scale: u64) -> f64 {
        let (c, b) = self.group_totals(g);
        if c == 0 {
            0.0
        } else {
            b as f64 * size_scale as f64 / c as f64
        }
    }
}

fn group_breakdown_rows(census: &TypeCensus, group: TypeGroup, scale: u64) -> Vec<String> {
    TypeCensus::kinds_of(group)
        .into_iter()
        .filter(|&k| census.count(k) > 0)
        .map(|k| {
            format!(
                "{:<16} count {:>6.1} %  capacity {:>6.1} %  avg {:>12.0} B",
                k.label(),
                census.kind_count_share_in_group(k) * 100.0,
                census.kind_capacity_share_in_group(k) * 100.0,
                census.kind_avg_size(k, scale)
            )
        })
        .collect()
}

/// Fig. 13 — the three-level type taxonomy.
pub fn fig13(data: &StudyData) -> FigureReport {
    let census = TypeCensus::build(data);
    let mut rows = vec!["level 1: commonly used file types (everything generated)".to_string()];
    for g in TypeGroup::ALL {
        let (c, b) = census.group_totals(g);
        rows.push(format!("level 2: {:<6} — {} files, {} bytes", g.label(), c, b));
        for k in TypeCensus::kinds_of(g) {
            if census.count(k) > 0 {
                rows.push(format!("  level 3: {:<18} {} files", k.label(), census.count(k)));
            }
        }
    }
    let populated = TypeGroup::ALL.iter().filter(|&&g| census.group_totals(g).0 > 0).count();
    FigureReport {
        id: "Fig. 13",
        title: "taxonomy of file types".into(),
        rows,
        anchors: vec![Anchor::new("populated type groups", 8.0, populated as f64)],
    }
}

/// Fig. 14 — file count % and capacity % by type group.
pub fn fig14(data: &StudyData) -> FigureReport {
    let census = TypeCensus::build(data);
    let rows = TypeGroup::ALL
        .iter()
        .map(|&g| {
            format!(
                "{:<6} count {:>5.1} %   capacity {:>5.1} %",
                g.label(),
                census.group_count_share(g) * 100.0,
                census.group_capacity_share(g) * 100.0
            )
        })
        .collect();
    FigureReport {
        id: "Fig. 14",
        title: "file count and capacity by type group".into(),
        rows,
        anchors: vec![
            Anchor::new("documents count share", 0.44, census.group_count_share(TypeGroup::Documents)),
            Anchor::new("source count share", 0.13, census.group_count_share(TypeGroup::SourceCode)),
            Anchor::new("EOL count share", 0.11, census.group_count_share(TypeGroup::Eol)),
            Anchor::new("scripts count share", 0.09, census.group_count_share(TypeGroup::Scripts)),
            Anchor::new("image-data count share", 0.04, census.group_count_share(TypeGroup::ImageData)),
            Anchor::new("EOL capacity share", 0.37, census.group_capacity_share(TypeGroup::Eol)),
            Anchor::new("archival capacity share", 0.23, census.group_capacity_share(TypeGroup::Archival)),
            Anchor::new("documents capacity share", 0.14, census.group_capacity_share(TypeGroup::Documents)),
        ],
    }
}

/// Fig. 15 — average file size by type group.
pub fn fig15(data: &StudyData) -> FigureReport {
    let census = TypeCensus::build(data);
    let rows = TypeGroup::ALL
        .iter()
        .map(|&g| format!("{:<6} avg {:>12.0} B", g.label(), census.group_avg_size(g, data.size_scale)))
        .collect();
    FigureReport {
        id: "Fig. 15",
        title: "average file size by type group".into(),
        rows,
        anchors: vec![
            Anchor::new("DB avg size (bytes)", 978.8e3, census.group_avg_size(TypeGroup::Database, data.size_scale)),
            Anchor::new("EOL avg size (bytes)", 100.0e3, census.group_avg_size(TypeGroup::Eol, data.size_scale)),
            Anchor::new("archival avg size (bytes)", 100.0e3, census.group_avg_size(TypeGroup::Archival, data.size_scale)),
        ],
    }
}

/// Fig. 16 — EOL breakdown.
pub fn fig16(data: &StudyData) -> FigureReport {
    let census = TypeCensus::build(data);
    let ir_count: u64 = [FileKind::PythonBytecode, FileKind::JavaClass, FileKind::TerminfoCompiled]
        .iter()
        .map(|&k| census.count(k))
        .sum();
    let ir_bytes: u64 = [FileKind::PythonBytecode, FileKind::JavaClass, FileKind::TerminfoCompiled]
        .iter()
        .map(|&k| census.bytes(k))
        .sum();
    let (eol_count, _) = census.group_totals(TypeGroup::Eol);
    FigureReport {
        id: "Fig. 16",
        title: "EOL files (executables, object code, libraries)".into(),
        rows: group_breakdown_rows(&census, TypeGroup::Eol, data.size_scale),
        anchors: vec![
            Anchor::new("ELF count share of EOL", 0.30, census.kind_count_share_in_group(FileKind::Elf)),
            Anchor::new("IR count share of EOL", 0.64, ir_count as f64 / eol_count.max(1) as f64),
            Anchor::new("ELF capacity share of EOL", 0.84, census.kind_capacity_share_in_group(FileKind::Elf)),
            Anchor::new("avg ELF size (bytes)", 312.0e3, census.kind_avg_size(FileKind::Elf, data.size_scale)),
            Anchor::new(
                "avg IR size (bytes)",
                9.0e3,
                ir_bytes as f64 * data.size_scale as f64 / ir_count.max(1) as f64,
            ),
        ],
    }
}

/// Fig. 17 — source code breakdown.
pub fn fig17(data: &StudyData) -> FigureReport {
    let census = TypeCensus::build(data);
    FigureReport {
        id: "Fig. 17",
        title: "source code files".into(),
        rows: group_breakdown_rows(&census, TypeGroup::SourceCode, data.size_scale),
        anchors: vec![
            Anchor::new("C/C++ count share", 0.803, census.kind_count_share_in_group(FileKind::CSource)),
            Anchor::new("C/C++ capacity share", 0.80, census.kind_capacity_share_in_group(FileKind::CSource)),
            Anchor::new("Perl5 count share", 0.09, census.kind_count_share_in_group(FileKind::Perl5Module)),
            Anchor::new("Perl5 capacity share", 0.11, census.kind_capacity_share_in_group(FileKind::Perl5Module)),
            Anchor::new("Ruby count share", 0.08, census.kind_count_share_in_group(FileKind::RubyModule)),
            Anchor::new("Ruby capacity share", 0.03, census.kind_capacity_share_in_group(FileKind::RubyModule)),
        ],
    }
}

/// Fig. 18 — scripts breakdown.
pub fn fig18(data: &StudyData) -> FigureReport {
    let census = TypeCensus::build(data);
    FigureReport {
        id: "Fig. 18",
        title: "script files".into(),
        rows: group_breakdown_rows(&census, TypeGroup::Scripts, data.size_scale),
        anchors: vec![
            Anchor::new("Python count share", 0.535, census.kind_count_share_in_group(FileKind::PythonScript)),
            Anchor::new("Python capacity share", 0.66, census.kind_capacity_share_in_group(FileKind::PythonScript)),
            Anchor::new("shell count share", 0.20, census.kind_count_share_in_group(FileKind::ShellScript)),
            Anchor::new("shell capacity share", 0.06, census.kind_capacity_share_in_group(FileKind::ShellScript)),
            Anchor::new("Ruby count share", 0.10, census.kind_count_share_in_group(FileKind::RubyScript)),
        ],
    }
}

/// Fig. 19 — documents breakdown.
pub fn fig19(data: &StudyData) -> FigureReport {
    let census = TypeCensus::build(data);
    FigureReport {
        id: "Fig. 19",
        title: "document files".into(),
        rows: group_breakdown_rows(&census, TypeGroup::Documents, data.size_scale),
        anchors: vec![
            Anchor::new("ASCII count share", 0.80, census.kind_count_share_in_group(FileKind::AsciiText)),
            Anchor::new("UTF-8 count share", 0.05, census.kind_count_share_in_group(FileKind::Utf8Text)),
            Anchor::new("XML/HTML count share", 0.13, census.kind_count_share_in_group(FileKind::XmlHtml)),
            Anchor::new("XML/HTML capacity share", 0.18, census.kind_capacity_share_in_group(FileKind::XmlHtml)),
        ],
    }
}

/// Fig. 20 — archival breakdown.
pub fn fig20(data: &StudyData) -> FigureReport {
    let census = TypeCensus::build(data);
    FigureReport {
        id: "Fig. 20",
        title: "archival files".into(),
        rows: group_breakdown_rows(&census, TypeGroup::Archival, data.size_scale),
        anchors: vec![
            Anchor::new("zip/gzip count share", 0.963, census.kind_count_share_in_group(FileKind::ZipGzip)),
            Anchor::new("zip/gzip capacity share", 0.70, census.kind_capacity_share_in_group(FileKind::ZipGzip)),
            Anchor::new("avg zip/gzip size (bytes)", 67.0e3, census.kind_avg_size(FileKind::ZipGzip, data.size_scale)),
            Anchor::new("avg bzip2 size (bytes)", 199.0e3, census.kind_avg_size(FileKind::Bzip2, data.size_scale)),
            Anchor::new("avg tar size (bytes)", 466.0e3, census.kind_avg_size(FileKind::TarArchive, data.size_scale)),
            Anchor::new("avg xz size (bytes)", 534.0e3, census.kind_avg_size(FileKind::XzArchive, data.size_scale)),
        ],
    }
}

/// Fig. 21 — database breakdown.
pub fn fig21(data: &StudyData) -> FigureReport {
    let census = TypeCensus::build(data);
    FigureReport {
        id: "Fig. 21",
        title: "database files".into(),
        rows: group_breakdown_rows(&census, TypeGroup::Database, data.size_scale),
        anchors: vec![
            Anchor::new("BerkeleyDB count share", 0.33, census.kind_count_share_in_group(FileKind::BerkeleyDb)),
            Anchor::new("MySQL count share", 0.30, census.kind_count_share_in_group(FileKind::MysqlDb)),
            Anchor::new("SQLite count share", 0.07, census.kind_count_share_in_group(FileKind::SqliteDb)),
            Anchor::new("SQLite capacity share", 0.57, census.kind_capacity_share_in_group(FileKind::SqliteDb)),
        ],
    }
}

/// Fig. 22 — image-data breakdown.
pub fn fig22(data: &StudyData) -> FigureReport {
    let census = TypeCensus::build(data);
    FigureReport {
        id: "Fig. 22",
        title: "image data files".into(),
        rows: group_breakdown_rows(&census, TypeGroup::ImageData, data.size_scale),
        anchors: vec![
            Anchor::new("PNG count share", 0.67, census.kind_count_share_in_group(FileKind::Png)),
            Anchor::new("PNG capacity share", 0.45, census.kind_capacity_share_in_group(FileKind::Png)),
            Anchor::new("JPEG capacity share", 0.20, census.kind_capacity_share_in_group(FileKind::Jpeg)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_study;
    use dhub_synth::{generate_hub, SynthConfig};
    use std::sync::OnceLock;

    fn data() -> &'static StudyData {
        static DATA: OnceLock<StudyData> = OnceLock::new();
        DATA.get_or_init(|| {
            let hub = generate_hub(&SynthConfig::default_scale(23).with_repos(70));
            run_study(&hub, 4)
        })
    }

    #[test]
    fn census_totals_match_layer_counts() {
        let d = data();
        let census = TypeCensus::build(d);
        let files: u64 = d.layer_slice().iter().map(|l| l.file_count).sum();
        assert_eq!(census.total_count(), files);
        let bytes: u64 = d.layer_slice().iter().map(|l| l.fls).sum();
        assert_eq!(census.total_bytes(), bytes);
    }

    #[test]
    fn fig14_group_shares_in_band() {
        let f = fig14(data());
        let doc = f.anchors.iter().find(|a| a.name.contains("documents count")).unwrap();
        assert!((0.30..0.55).contains(&doc.measured), "doc share {}", doc.measured);
        let eol = f.anchors.iter().find(|a| a.name.contains("EOL count")).unwrap();
        assert!((0.05..0.20).contains(&eol.measured), "eol share {}", eol.measured);
        // Shares sum to ~1 across groups.
        let census = TypeCensus::build(data());
        let total: f64 = TypeGroup::ALL.iter().map(|&g| census.group_count_share(g)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig16_elf_dominates_eol_capacity() {
        let f = fig16(data());
        let cap = f.anchors.iter().find(|a| a.name.contains("ELF capacity")).unwrap();
        assert!(cap.measured > 0.5, "ELF capacity share {}", cap.measured);
        let ir = f.anchors.iter().find(|a| a.name.contains("IR count")).unwrap();
        assert!(ir.measured > 0.4, "IR count share {}", ir.measured);
    }

    #[test]
    fn fig17_c_dominates_source() {
        let f = fig17(data());
        assert!(f.anchors[0].measured > 0.6, "C share {}", f.anchors[0].measured);
    }

    #[test]
    fn fig20_zip_dominates_archival() {
        let f = fig20(data());
        assert!(f.anchors[0].measured > 0.85);
    }

    #[test]
    fn fig21_sqlite_capacity_heavy() {
        let f = fig21(data());
        let cap = f.anchors.iter().find(|a| a.name.contains("SQLite capacity")).unwrap();
        let cnt = f.anchors.iter().find(|a| a.name.contains("SQLite count")).unwrap();
        assert!(cap.measured > cnt.measured, "sqlite capacity {} vs count {}", cap.measured, cnt.measured);
    }

    #[test]
    fn fig13_all_groups_populated() {
        let f = fig13(data());
        assert_eq!(f.anchors[0].measured, 8.0);
    }

    #[test]
    fn all_file_figures_render() {
        let d = data();
        for f in [fig13(d), fig14(d), fig15(d), fig16(d), fig17(d), fig18(d), fig19(d), fig20(d), fig21(d), fig22(d)] {
            assert!(!f.rows.is_empty(), "{} has no rows", f.id);
            assert!(!f.render().is_empty());
        }
    }
}
