//! Image characterization figures (Figs. 8–12, §IV-B).

use crate::pipeline::StudyData;
use crate::report::{cdf_rows, Anchor, FigureReport};
use dhub_stats::{Ecdf, Histogram, LogHistogram};

/// Fig. 8 — repository popularity (pull counts).
pub fn fig08(data: &StudyData) -> FigureReport {
    let pulls: Vec<u64> = data.pulls.iter().map(|(_, c)| *c).collect();
    let e = Ecdf::from_u64(pulls.iter().copied());
    let mut rows = cdf_rows(&e, "pulls");

    // Fig. 8b: linear-binned histogram over the low range where the twin
    // peaks live.
    let mut hist = Histogram::new(0.0, 120.0, 40);
    hist.extend(pulls.iter().map(|&p| p as f64));
    rows.extend(
        hist.rows()
            .iter()
            .filter(|(_, _, c)| *c > 0)
            .map(|(lo, hi, c)| format!("pulls [{lo:.0},{hi:.0}) : {c} repos")),
    );
    let top: Vec<String> = data
        .pulls
        .iter()
        .filter(|(_, c)| *c > 1_000_000)
        .map(|(r, c)| format!("top repo {} : {} pulls", r, c))
        .collect();
    rows.extend(top);
    // Skew summary: Gini + the Lorenz knee (what the caching argument rests on).
    let raw: Vec<f64> = pulls.iter().map(|&p| p as f64).collect();
    rows.push(format!("pull-count gini = {:.3}", dhub_stats::gini(&raw)));
    for (p, m) in dhub_stats::lorenz_curve(&raw, 5) {
        rows.push(format!("lorenz: bottom {:>3.0} % of repos hold {:>5.2} % of pulls", p * 100.0, m * 100.0));
    }

    FigureReport {
        id: "Fig. 8",
        title: "repository popularity (pull counts)".into(),
        rows,
        anchors: vec![
            Anchor::new("median pulls", 40.0, e.median()),
            Anchor::new("p90 pulls", 333.0, e.quantile(0.9)),
            Anchor::new("max pulls (nginx)", 650.0e6, e.max()),
        ],
    }
}

/// Fig. 9 — image size distribution (CIS, FIS).
pub fn fig09(data: &StudyData) -> FigureReport {
    let scale = data.size_scale as f64;
    let cis = Ecdf::new(data.images.iter().map(|i| i.cis as f64 * scale).collect());
    let fis = Ecdf::new(data.images.iter().map(|i| i.fis as f64 * scale).collect());
    let mut rows = cdf_rows(&cis, "CIS(B)");
    rows.extend(cdf_rows(&fis, "FIS(B)"));

    FigureReport {
        id: "Fig. 9",
        title: "image size distribution (CIS, FIS)".into(),
        rows,
        anchors: vec![
            Anchor::new("median CIS (bytes)", 17.0e6, cis.median()),
            Anchor::new("p90 CIS (bytes)", 0.48e9, cis.quantile(0.9)),
            Anchor::new("median FIS (bytes)", 94.0e6, fis.median()),
            Anchor::new("p90 FIS (bytes)", 1.3e9, fis.quantile(0.9)),
        ],
    }
}

/// Fig. 10 — layers per image.
pub fn fig10(data: &StudyData) -> FigureReport {
    let counts: Vec<u64> = data.images.iter().map(|i| i.layer_count() as u64).collect();
    let e = Ecdf::from_u64(counts.iter().copied());
    let mut freq = std::collections::BTreeMap::new();
    for &c in &counts {
        *freq.entry(c).or_insert(0u64) += 1;
    }
    let mode = freq.iter().max_by_key(|(_, &c)| c).map(|(&k, _)| k).unwrap_or(0);
    let single = counts.iter().filter(|&&c| c == 1).count() as f64 / counts.len().max(1) as f64;

    let mut rows = cdf_rows(&e, "layers");
    rows.extend(freq.iter().map(|(k, c)| format!("{k} layers : {c} images")));

    FigureReport {
        id: "Fig. 10",
        title: "layer count per image".into(),
        rows,
        anchors: vec![
            Anchor::new("median layers per image", 8.0, e.median()),
            Anchor::new("p90 layers per image", 18.0, e.quantile(0.9)),
            Anchor::new("modal layer count", 8.0, mode as f64),
            Anchor::new("single-layer image fraction", 7060.0 / 355_319.0, single),
            Anchor::new("max layers", 120.0, e.max()),
        ],
    }
}

/// Fig. 11 — directories per image.
pub fn fig11(data: &StudyData) -> FigureReport {
    let e = Ecdf::from_u64(data.images.iter().map(|i| i.dir_count));
    let mut rows = cdf_rows(&e, "dirs");
    let mut hist = LogHistogram::new();
    for i in &data.images {
        hist.record(i.dir_count);
    }
    rows.extend(hist.rows().iter().map(|(lo, hi, c)| format!("dirs [{lo},{hi}) : {c} images")));

    FigureReport {
        id: "Fig. 11",
        title: "directories per image".into(),
        rows,
        anchors: vec![
            Anchor::new("median dirs per image", 296.0, e.median()),
            Anchor::new("p90 dirs per image", 7344.0, e.quantile(0.9)),
        ],
    }
}

/// Fig. 12 — files per image.
pub fn fig12(data: &StudyData) -> FigureReport {
    let e = Ecdf::from_u64(data.images.iter().map(|i| i.file_count));
    FigureReport {
        id: "Fig. 12",
        title: "files per image".into(),
        rows: cdf_rows(&e, "files"),
        anchors: vec![
            Anchor::new("median files per image", 1090.0, e.median()),
            Anchor::new("p90 files per image", 64_780.0, e.quantile(0.9)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_study;
    use dhub_synth::{generate_hub, SynthConfig};
    use std::sync::OnceLock;

    fn data() -> &'static StudyData {
        static DATA: OnceLock<StudyData> = OnceLock::new();
        DATA.get_or_init(|| {
            let hub = generate_hub(&SynthConfig::default_scale(22).with_repos(70));
            run_study(&hub, 4)
        })
    }

    #[test]
    fn fig08_famous_max_reproduced() {
        let f = fig08(data());
        let max = f.anchors.iter().find(|a| a.name.contains("max")).unwrap();
        // nginx's implanted 650 M pulls (+1 for our own download).
        assert!((max.measured - 650.0e6).abs() < 100.0, "max {}", max.measured);
        assert!(f.rows.iter().any(|r| r.contains("nginx")));
    }

    #[test]
    fn fig08_median_in_band() {
        let f = fig08(data());
        let med = &f.anchors[0];
        assert!((10.0..120.0).contains(&med.measured), "median pulls {}", med.measured);
    }

    #[test]
    fn fig09_cis_below_fis() {
        let f = fig09(data());
        let cis = f.anchors.iter().find(|a| a.name.contains("median CIS")).unwrap();
        let fis = f.anchors.iter().find(|a| a.name.contains("median FIS")).unwrap();
        assert!(cis.measured < fis.measured, "compression must shrink images");
    }

    #[test]
    fn fig10_mode_and_median() {
        let f = fig10(data());
        let mode = f.anchors.iter().find(|a| a.name.contains("modal")).unwrap();
        assert!((5.0..=11.0).contains(&mode.measured), "mode {}", mode.measured);
        let med = f.anchors.iter().find(|a| a.name.contains("median")).unwrap();
        assert!((5.0..=12.0).contains(&med.measured));
    }

    #[test]
    fn fig11_fig12_positive() {
        let f11 = fig11(data());
        let f12 = fig12(data());
        assert!(f11.anchors[0].measured > 1.0);
        assert!(f12.anchors[0].measured > 10.0);
        // Images hold more files than directories.
        assert!(f12.anchors[0].measured > f11.anchors[0].measured);
    }
}
