//! Pull-latency modeling — the paper's §VI item "analyze how layer
//! hierarchy and compression methods impact access latency", built on the
//! trade-off §IV-A identifies: compression shrinks transfers but costs
//! client-side decompression, and for the small, barely-compressible
//! layers that dominate the registry it can be a net loss.
//!
//! The model charges, per layer, network transfer (latency + size/bw via
//! [`NetworkModel`]) plus decompression at a fixed throughput; an image's
//! pull time is evaluated under two fetch schedules (the "layer hierarchy"
//! axis): sequential, and fully parallel across layers (Docker's actual
//! behaviour is bounded parallelism between these extremes).

use crate::pipeline::StudyData;
use crate::report::{Anchor, FigureReport};
use dhub_registry::NetworkModel;
use dhub_stats::Ecdf;
use std::time::Duration;

/// Cost model for a pull.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Transport characteristics.
    pub net: NetworkModel,
    /// Client decompression throughput (bytes/s of *compressed* input).
    pub inflate_bps: u64,
    /// Layers whose uncompressed size is below this are stored and
    /// transferred uncompressed (the §IV-A proposal); `0` disables it.
    pub uncompressed_below: u64,
}

impl LatencyModel {
    /// WAN defaults with a typical single-core gunzip rate.
    pub fn wan_default() -> LatencyModel {
        LatencyModel { net: NetworkModel::wan(), inflate_bps: 60_000_000, uncompressed_below: 0 }
    }

    /// Per-layer cost: `(transfer, decompress)`.
    fn layer_cost(&self, cls: u64, fls: u64) -> (Duration, Duration) {
        if self.uncompressed_below > 0 && fls < self.uncompressed_below {
            // Stored uncompressed: bigger transfer, no decompression. The
            // on-the-wire size of an uncompressed layer is its tar size,
            // approximated by FLS plus per-file framing already included
            // in FLS-adjacent accounting; FLS is the lower bound.
            (self.net.transfer_time(fls.max(cls)), Duration::ZERO)
        } else {
            (self.net.transfer_time(cls), Duration::from_secs_f64(cls as f64 / self.inflate_bps as f64))
        }
    }
}

/// Per-image pull latencies under a model. `parallel` fetches all layers
/// concurrently (cost = slowest layer); sequential sums them. Decompression
/// is serialized in both cases, as in the Docker client.
pub fn image_pull_latencies(data: &StudyData, model: &LatencyModel, parallel: bool) -> Vec<Duration> {
    data.images
        .iter()
        .map(|img| {
            let mut transfer_total = Duration::ZERO;
            let mut transfer_max = Duration::ZERO;
            let mut inflate_total = Duration::ZERO;
            for d in &img.layers {
                if let Some(lp) = data.layers.get(d) {
                    let (t, i) = model.layer_cost(lp.cls, lp.fls);
                    transfer_total += t;
                    transfer_max = transfer_max.max(t);
                    inflate_total += i;
                }
            }
            if parallel {
                transfer_max + inflate_total
            } else {
                transfer_total + inflate_total
            }
        })
        .collect()
}

fn median_secs(lat: &[Duration]) -> f64 {
    if lat.is_empty() {
        return 0.0;
    }
    Ecdf::new(lat.iter().map(|d| d.as_secs_f64()).collect()).median()
}

/// Extension figure L1 — pull latency under compression policies and fetch
/// schedules.
pub fn ext_l1(data: &StudyData) -> FigureReport {
    let base = LatencyModel::wan_default();
    // The §IV-A threshold proposal, expressed in generated (scaled) bytes:
    // "small" means small relative to the population, so scale the paper's
    // 4 MB intuition down by size_scale.
    let threshold = (4_000_000 / data.size_scale).max(1);
    let uncmp = LatencyModel { uncompressed_below: threshold, ..base };

    let seq = image_pull_latencies(data, &base, false);
    let par = image_pull_latencies(data, &base, true);
    let seq_uncmp = image_pull_latencies(data, &uncmp, false);

    let seq_med = median_secs(&seq);
    let par_med = median_secs(&par);
    let uncmp_med = median_secs(&seq_uncmp);

    let mut rows = crate::report::cdf_rows(
        &Ecdf::new(seq.iter().map(|d| d.as_secs_f64()).collect()),
        "pull secs (sequential, compressed)",
    );
    rows.push(format!("median sequential compressed   : {seq_med:.3}s"));
    rows.push(format!("median parallel   compressed   : {par_med:.3}s"));
    rows.push(format!("median sequential small-uncomp : {uncmp_med:.3}s (threshold {threshold} B)"));

    FigureReport {
        id: "Ext. L1",
        title: "pull latency: compression policy x fetch schedule (§VI extension)".into(),
        rows,
        anchors: vec![
            // Directional expectations from §IV-A's argument, not paper
            // measurements: parallel fetch beats sequential, and storing
            // small layers uncompressed must not hurt the median pull.
            Anchor::new("parallel/sequential median ratio (<1)", 0.6, par_med / seq_med.max(1e-12)),
            Anchor::new(
                "small-uncompressed/compressed median ratio (<=1)",
                1.0,
                uncmp_med / seq_med.max(1e-12),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_study;
    use dhub_synth::{generate_hub, SynthConfig};
    use std::sync::OnceLock;

    fn data() -> &'static StudyData {
        static DATA: OnceLock<StudyData> = OnceLock::new();
        DATA.get_or_init(|| {
            let hub = generate_hub(&SynthConfig::tiny(41).with_repos(50));
            run_study(&hub, 2)
        })
    }

    #[test]
    fn parallel_never_slower_than_sequential() {
        let m = LatencyModel::wan_default();
        let seq = image_pull_latencies(data(), &m, false);
        let par = image_pull_latencies(data(), &m, true);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert!(p <= s, "parallel {p:?} > sequential {s:?}");
        }
    }

    #[test]
    fn latency_grows_with_layer_count() {
        let m = LatencyModel::wan_default();
        let seq = image_pull_latencies(data(), &m, false);
        // An image with many layers pays at least its per-layer RTTs.
        let (idx, max_layers) = data()
            .images
            .iter()
            .enumerate()
            .map(|(i, img)| (i, img.layer_count()))
            .max_by_key(|&(_, l)| l)
            .unwrap();
        assert!(seq[idx] >= m.net.rtt * max_layers as u32);
    }

    #[test]
    fn uncompressed_small_layers_skip_inflation() {
        let base = LatencyModel::wan_default();
        let all_uncmp = LatencyModel { uncompressed_below: u64::MAX, ..base };
        // With everything uncompressed there is no decompression cost, but
        // transfers grow; both effects must be visible.
        let seq_base = image_pull_latencies(data(), &base, false);
        let seq_uncmp = image_pull_latencies(data(), &all_uncmp, false);
        let sum_base: f64 = seq_base.iter().map(|d| d.as_secs_f64()).sum();
        let sum_uncmp: f64 = seq_uncmp.iter().map(|d| d.as_secs_f64()).sum();
        assert!(sum_base > 0.0 && sum_uncmp > 0.0);
        assert!((sum_base - sum_uncmp).abs() > 1e-9, "policies must differ");
    }

    #[test]
    fn ext_l1_renders_and_parallel_wins() {
        let f = ext_l1(data());
        assert!(f.render().contains("Ext. L1"));
        let ratio = f.anchors.iter().find(|a| a.name.contains("parallel")).unwrap();
        assert!(ratio.measured <= 1.0, "parallel/seq ratio {}", ratio.measured);
    }
}
