//! The crawl → download → analyze pipeline (§III).

use dhub_analyzer::{analyze_all_obs, image_profiles, ImageInput};
use dhub_crawler::{crawl_obs, CrawlReport};
use dhub_dedup::ImageLayers;
use dhub_digest::FxHashMap;
use dhub_downloader::{download_all_http_obs, download_all_obs, DownloadReport};
use dhub_faults::RetryPolicy;
use dhub_model::{Digest, ImageProfile, LayerProfile, RepoName};
use dhub_obs::{span, MetricsRegistry};
use dhub_registry::NetworkModel;
use dhub_synth::SyntheticHub;

/// Everything the figures need, produced by one pipeline run.
pub struct StudyData {
    /// Crawl statistics (raw hits, distinct repos).
    pub crawl: CrawlReport,
    /// Download statistics (successes, failure taxonomy, unique layers).
    pub download: DownloadReport,
    /// Unique-layer profiles keyed by digest.
    pub layers: FxHashMap<Digest, LayerProfile>,
    /// Image profiles for every downloaded image.
    pub images: Vec<ImageProfile>,
    /// Image → layer digests view for dedup analyses.
    pub image_layers: Vec<ImageLayers>,
    /// Pull counts of every crawled repository (popularity analysis covers
    /// all repos, not only downloadable ones).
    pub pulls: Vec<(RepoName, u64)>,
    /// Layers that failed decode (should be zero against the synthetic hub).
    pub analyze_errors: usize,
    /// The generator's size divisor, used to rescale size anchors back to
    /// paper-scale bytes.
    pub size_scale: u64,
    /// Seed that produced the hub (for deterministic sub-sampling).
    pub seed: u64,
}

impl StudyData {
    /// Layer profiles as a deterministic slice of references.
    pub fn layer_slice(&self) -> Vec<&LayerProfile> {
        dhub_dedup::profile_slice(&self.layers)
    }

    /// Compressed layer sizes keyed by digest.
    pub fn layer_sizes(&self) -> FxHashMap<Digest, u64> {
        self.layers.iter().map(|(d, p)| (*d, p.cls)).collect()
    }
}

/// Runs the full measurement pipeline against a synthetic hub.
pub fn run_study(hub: &SyntheticHub, threads: usize) -> StudyData {
    run_study_with(hub, threads, &RetryPolicy::default())
}

/// [`run_study`] with an explicit retry policy. Faults come from the
/// injector attached to `hub.registry` (if any) — the crawl consults the
/// same injector for its search pages.
pub fn run_study_with(hub: &SyntheticHub, threads: usize, policy: &RetryPolicy) -> StudyData {
    run_study_obs(hub, threads, policy, &MetricsRegistry::new())
}

/// Sets the `dhub_layer_dedup_ratio` gauge: the fraction of manifest layer
/// references that deduplicated onto an already-fetched layer.
fn set_dedup_ratio(obs: &MetricsRegistry, download: &DownloadReport) {
    let refs = download.unique_layers as u64 + download.layer_fetches_skipped;
    if refs > 0 {
        obs.gauge("dhub_layer_dedup_ratio")
            .set(download.layer_fetches_skipped as f64 / refs as f64);
    }
}

/// Shared tail of every batch pipeline shape: aggregate image profiles,
/// build the dedup view, collect pull counts, and assemble [`StudyData`].
fn assemble_study(
    hub: &SyntheticHub,
    crawl_result: dhub_crawler::CrawlResult,
    dl: dhub_downloader::DownloadResult,
    analysis: dhub_analyzer::AnalysisResult,
) -> StudyData {
    let inputs: Vec<ImageInput> = dl
        .images
        .iter()
        .map(|img| ImageInput {
            repo: img.repo.clone(),
            manifest_digest: img.manifest_digest,
            layers: img.manifest.layers.iter().map(|l| (l.digest, l.size)).collect(),
        })
        .collect();
    let images = image_profiles(&inputs, &analysis.layers);
    let image_layers: Vec<ImageLayers> = dl
        .images
        .iter()
        .map(|img| ImageLayers { layers: img.manifest.layers.iter().map(|l| l.digest).collect() })
        .collect();

    // Popularity: pull counts of every crawled repository.
    let pulls: Vec<(RepoName, u64)> = crawl_result
        .repos
        .iter()
        .filter_map(|r| hub.registry.pull_count(r).map(|c| (r.clone(), c)))
        .collect();

    StudyData {
        crawl: crawl_result.report,
        download: dl.report,
        layers: analysis.layers,
        images,
        image_layers,
        pulls,
        analyze_errors: analysis.errors.len(),
        size_scale: hub.config.size_scale,
        seed: hub.config.seed,
    }
}

/// [`run_study_with`], recording live metrics and per-stage spans into
/// `obs`. The per-stage reports inside [`StudyData`] are derived from the
/// `dhub_*` counters, so a `/metrics` scrape and the end-of-run table
/// reconcile exactly.
pub fn run_study_obs(
    hub: &SyntheticHub,
    threads: usize,
    policy: &RetryPolicy,
    obs: &MetricsRegistry,
) -> StudyData {
    // §III-A: crawl. The official list is public knowledge (the paper
    // hardcodes the <200 official repositories).
    let officials: Vec<RepoName> =
        hub.registry.repo_names().into_iter().filter(|r| r.is_official()).collect();
    let injector = hub.registry.fault_injector();
    let crawl_result = {
        let _stage = span!(obs, "crawl");
        crawl_obs(&hub.search, &officials, injector.as_deref(), policy, obs)
    };

    // §III-B: download latest images, unique layers only.
    let net = NetworkModel::wan();
    let dl = {
        let _stage = span!(obs, "download");
        download_all_obs(&hub.registry, &crawl_result.repos, threads, &net, policy, obs)
    };
    set_dedup_ratio(obs, &dl.report);

    // §III-C: analyze layers, then aggregate image profiles.
    let analysis = {
        let _stage = span!(obs, "analyze");
        analyze_all_obs(&dl.layers, threads, obs)
    };
    assemble_study(hub, crawl_result, dl, analysis)
}

/// [`run_study_obs`] with the analysis stage replaced by the fused
/// analyze + ingest pass: every successfully downloaded layer is profiled
/// *and* ingested into `store` in one decompression/hash sweep
/// ([`dhub_dedupstore::analyze_and_ingest_all`]). The returned
/// [`StudyData`] is identical to the plain pipeline's; the store fills as
/// a side effect, with its `dhub_store_*` metrics on whatever registry it
/// was bound to.
pub fn run_study_store_obs(
    hub: &SyntheticHub,
    threads: usize,
    policy: &RetryPolicy,
    store: &dhub_dedupstore::DedupStore,
    obs: &MetricsRegistry,
) -> StudyData {
    let officials: Vec<RepoName> =
        hub.registry.repo_names().into_iter().filter(|r| r.is_official()).collect();
    let injector = hub.registry.fault_injector();
    let crawl_result = {
        let _stage = span!(obs, "crawl");
        crawl_obs(&hub.search, &officials, injector.as_deref(), policy, obs)
    };

    let net = NetworkModel::wan();
    let dl = {
        let _stage = span!(obs, "download");
        download_all_obs(&hub.registry, &crawl_result.repos, threads, &net, policy, obs)
    };
    set_dedup_ratio(obs, &dl.report);

    let fused = {
        let _stage = span!(obs, "analyze");
        dhub_dedupstore::analyze_and_ingest_all(&dl.layers, threads, store, obs)
    };
    assemble_study(hub, crawl_result, dl, fused.analysis)
}

/// [`run_study_store_obs`] against the **durable** store: the fused
/// analyze + ingest pass writes every object and recipe through
/// `dhub-persist`'s crash-safe publish path, so the filled store survives
/// the process and can be reopened ([`dhub_dedupstore::PersistentDedupStore`]).
/// `StudyData` is identical to the in-memory pipeline's; durability is
/// purely a side effect, with `dhub_persist_*` counters on the publisher's
/// registry binding.
pub fn run_study_persist_obs(
    hub: &SyntheticHub,
    threads: usize,
    policy: &RetryPolicy,
    store: &dhub_dedupstore::PersistentDedupStore,
    obs: &MetricsRegistry,
) -> StudyData {
    let officials: Vec<RepoName> =
        hub.registry.repo_names().into_iter().filter(|r| r.is_official()).collect();
    let injector = hub.registry.fault_injector();
    let crawl_result = {
        let _stage = span!(obs, "crawl");
        crawl_obs(&hub.search, &officials, injector.as_deref(), policy, obs)
    };

    let net = NetworkModel::wan();
    let dl = {
        let _stage = span!(obs, "download");
        download_all_obs(&hub.registry, &crawl_result.repos, threads, &net, policy, obs)
    };
    set_dedup_ratio(obs, &dl.report);

    let fused = {
        let _stage = span!(obs, "analyze");
        dhub_dedupstore::analyze_and_ingest_all_persistent(&dl.layers, threads, store, obs)
    };
    assemble_study(hub, crawl_result, dl, fused.analysis)
}

/// [`run_study_store_obs`] with a default registry.
pub fn run_study_store(
    hub: &SyntheticHub,
    threads: usize,
    policy: &RetryPolicy,
    store: &dhub_dedupstore::DedupStore,
) -> StudyData {
    run_study_store_obs(hub, threads, policy, store, &MetricsRegistry::new())
}

/// Runs the full pipeline with the download stage over the Registry V2
/// **HTTP** transport against `addr` instead of in-process calls. `addr`
/// may be a direct origin (`RegistryServer::start`) or a pull-through
/// mirror (`RegistryServer::start_mirror` fronting `dhub-mirror`): both
/// speak the same wire protocol, so the study is topology-agnostic and
/// its results must be byte-identical either way (the mirror chaos suite
/// gates on exactly that).
///
/// The crawl stays in-process against `hub.search` — the paper crawled
/// `hub.docker.com` (the search API) and downloaded from
/// `registry-1.docker.io`, two different services; the mirror tier only
/// fronts the latter.
pub fn run_study_http(hub: &SyntheticHub, addr: std::net::SocketAddr, threads: usize) -> StudyData {
    run_study_http_with(hub, addr, threads, &RetryPolicy::default())
}

/// [`run_study_http`] with an explicit retry policy (installed on every
/// per-repo HTTP client and on the crawl).
pub fn run_study_http_with(
    hub: &SyntheticHub,
    addr: std::net::SocketAddr,
    threads: usize,
    policy: &RetryPolicy,
) -> StudyData {
    run_study_http_obs(hub, addr, threads, policy, &MetricsRegistry::new())
}

/// [`run_study_http_with`], recording live metrics and per-stage spans
/// into `obs` — same counter-derived report contract as [`run_study_obs`].
pub fn run_study_http_obs(
    hub: &SyntheticHub,
    addr: std::net::SocketAddr,
    threads: usize,
    policy: &RetryPolicy,
    obs: &MetricsRegistry,
) -> StudyData {
    let officials: Vec<RepoName> =
        hub.registry.repo_names().into_iter().filter(|r| r.is_official()).collect();
    let injector = hub.registry.fault_injector();
    let crawl_result = {
        let _stage = span!(obs, "crawl");
        crawl_obs(&hub.search, &officials, injector.as_deref(), policy, obs)
    };

    // §III-B over real TCP: the server (origin or mirror) applies its own
    // wire faults; the HTTP client's retry/backoff absorbs them.
    let dl = {
        let _stage = span!(obs, "download");
        download_all_http_obs(addr, &crawl_result.repos, threads, policy, obs)
    };
    set_dedup_ratio(obs, &dl.report);

    let analysis = {
        let _stage = span!(obs, "analyze");
        analyze_all_obs(&dl.layers, threads, obs)
    };
    assemble_study(hub, crawl_result, dl, analysis)
}

/// Streaming variant of [`run_study`]: repositories flow through bounded
/// download → analyze pipeline stages (`dhub-par::pipeline`), so peak
/// memory holds only the channel depths' worth of layer blobs instead of
/// the whole dataset. This is the shape a paper-scale (47 TB) run needs;
/// results are identical to the batch path.
pub fn run_study_streaming(hub: &SyntheticHub, threads: usize) -> StudyData {
    run_study_streaming_with(hub, threads, &RetryPolicy::default())
}

/// [`run_study_streaming`] with an explicit retry policy, sharing the
/// batch path's retry helpers stage-side.
pub fn run_study_streaming_with(
    hub: &SyntheticHub,
    threads: usize,
    policy: &RetryPolicy,
) -> StudyData {
    run_study_streaming_obs(hub, threads, policy, &MetricsRegistry::new())
}

/// [`run_study_streaming_with`] recording into `obs`. The stage workers
/// feed the same `dhub_download_*` / `dhub_analyze_*` counters as the
/// batch path, and the assembled [`DownloadReport`] is derived from their
/// deltas — scraping `/metrics` mid-stream sees the run's live totals.
pub fn run_study_streaming_obs(
    hub: &SyntheticHub,
    threads: usize,
    policy: &RetryPolicy,
    obs: &MetricsRegistry,
) -> StudyData {
    use dhub_downloader::{get_blob_verified, get_manifest_with_retry, DownloadedImage, RetryCounters};
    use dhub_obs::DeltaCounter;
    use dhub_par::pipeline::{sink, source, stage};
    use std::collections::BTreeSet;
    use std::sync::Arc as SArc;

    let officials: Vec<RepoName> =
        hub.registry.repo_names().into_iter().filter(|r| r.is_official()).collect();
    let injector = hub.registry.fault_injector();
    let crawl_result = {
        let _stage = span!(obs, "crawl");
        crawl_obs(&hub.search, &officials, injector.as_deref(), policy, obs)
    };

    // Stage 1 (network-bound): resolve manifests + fetch unique layers.
    // Counters alias the batch path's metric names; the report below is
    // built from their deltas.
    let _stream_stage = span!(obs, "stream");
    let registry = hub.registry.clone();
    let fetched: SArc<dhub_par::ShardedMap<Digest, ()>> = SArc::new(dhub_par::ShardedMap::new(64));
    let auth = DeltaCounter::on(obs, "dhub_download_failed_auth_total");
    let no_latest = DeltaCounter::on(obs, "dhub_download_failed_no_latest_total");
    let other = DeltaCounter::on(obs, "dhub_download_failed_other_total");
    let bytes = DeltaCounter::on(obs, "dhub_download_bytes_total");
    let skipped = DeltaCounter::on(obs, "dhub_download_layer_fetches_skipped_total");
    let images_ok = DeltaCounter::on(obs, "dhub_download_images_ok_total");
    let unique = DeltaCounter::on(obs, "dhub_download_unique_layers_total");
    let counters = SArc::new(RetryCounters::on(obs));
    // Digests whose fetch exhausted the retry budget: images referencing
    // them are reclassified at assembly, exactly like the batch path.
    let failed: SArc<std::sync::Mutex<BTreeSet<Digest>>> =
        SArc::new(std::sync::Mutex::new(BTreeSet::new()));

    let repo_rx = source(crawl_result.repos.clone(), 64);
    let dl_registry = registry.clone();
    let dl_fetched = fetched.clone();
    let dl_counters = counters.clone();
    let dl_failed = failed.clone();
    let dl_policy = *policy;
    let (dl_auth, dl_nolatest, dl_other, dl_bytes, dl_skipped) =
        (auth.clone(), no_latest.clone(), other.clone(), bytes.clone(), skipped.clone());
    type DlItem = (DownloadedImage, Vec<(Digest, std::sync::Arc<Vec<u8>>)>);
    let dl_rx = stage(repo_rx, threads.max(2), 32, move |repo: RepoName| -> Option<DlItem> {
        match get_manifest_with_retry(&dl_registry, &repo, "latest", &dl_policy, &dl_counters) {
            Err(dhub_registry::ApiError::AuthRequired) => {
                dl_auth.inc();
                None
            }
            Err(dhub_registry::ApiError::TagNotFound) => {
                dl_nolatest.inc();
                None
            }
            Err(_) => {
                dl_other.inc();
                None
            }
            Ok(sess) => {
                let mut blobs = Vec::new();
                for l in &sess.manifest.layers {
                    // First inserter claims the digest (atomic per shard).
                    let claimed = dl_fetched.insert(l.digest, ()).is_none();
                    if !claimed {
                        dl_skipped.inc();
                        continue;
                    }
                    match get_blob_verified(&dl_registry, &l.digest, &dl_policy, &dl_counters) {
                        Ok(blob) => {
                            dl_bytes.add(blob.len() as u64);
                            blobs.push((l.digest, blob));
                        }
                        Err(_) => {
                            // The digest is abandoned; the image is
                            // reclassified at assembly. Its already-fetched
                            // blobs still flow downstream — another image
                            // may share those layers.
                            dl_failed.lock().unwrap().insert(l.digest);
                        }
                    }
                }
                Some((
                    DownloadedImage {
                        repo,
                        manifest_digest: sess.manifest_digest,
                        manifest: sess.manifest,
                    },
                    blobs,
                ))
            }
        }
    });

    // Stage 2 (CPU-bound): analyze each image's newly fetched layers.
    // Same counters and scratch-arena reuse as the batch path — each
    // stage worker's thread-local arena persists across every layer it
    // sees.
    let an_counters = dhub_analyzer::AnalyzeCounters::on(obs);
    let an_rx = stage(dl_rx, threads.max(1), 16, move |(img, blobs): DlItem| {
        let profiles: Vec<(Digest, LayerProfile)> = blobs
            .into_iter()
            .filter_map(|(d, blob)| {
                let start = std::time::Instant::now();
                let r = dhub_par::with_scratch(|scratch| {
                    let r = dhub_analyzer::analyze_layer_scratch(d, &blob, scratch);
                    match &r {
                        Ok(p) => an_counters.record_ok(p, scratch.tar_len()),
                        Err(_) => an_counters.record_err(),
                    }
                    r
                });
                an_counters.record_busy(start.elapsed());
                r.ok().map(|p| (d, p))
            })
            .collect();
        Some((img, profiles))
    });

    let results: Vec<(DownloadedImage, Vec<(Digest, LayerProfile)>)> = sink(an_rx);

    // Assemble StudyData exactly as the batch path does.
    let mut layers: FxHashMap<Digest, LayerProfile> = FxHashMap::default();
    let mut images_dl: Vec<DownloadedImage> = Vec::with_capacity(results.len());
    for (img, profiles) in results {
        for (d, p) in profiles {
            layers.insert(d, p);
        }
        images_dl.push(img);
    }
    // Images referencing an abandoned digest were still emitted (for their
    // shareable layers); drop them from the success set here, mirroring
    // the batch path's interleaving-independent classification.
    let failed_digests = failed.lock().unwrap().clone();
    let mut failed_images = 0usize;
    images_dl.retain(|img| {
        let complete = img.manifest.layers.iter().all(|l| !failed_digests.contains(&l.digest));
        failed_images += usize::from(!complete);
        complete
    });
    images_dl.sort_by(|a, b| a.repo.cmp(&b.repo));

    let inputs: Vec<ImageInput> = images_dl
        .iter()
        .map(|img| ImageInput {
            repo: img.repo.clone(),
            manifest_digest: img.manifest_digest,
            layers: img.manifest.layers.iter().map(|l| (l.digest, l.size)).collect(),
        })
        .collect();
    let images = image_profiles(&inputs, &layers);
    let image_layers: Vec<ImageLayers> = images_dl
        .iter()
        .map(|img| ImageLayers { layers: img.manifest.layers.iter().map(|l| l.digest).collect() })
        .collect();
    let pulls: Vec<(RepoName, u64)> = crawl_result
        .repos
        .iter()
        .filter_map(|r| hub.registry.pull_count(r).map(|c| (r.clone(), c)))
        .collect();

    images_ok.add(images_dl.len() as u64);
    unique.add(layers.len() as u64);
    other.add(failed_images as u64);
    let download = dhub_downloader::DownloadReport {
        images_downloaded: images_ok.delta() as usize,
        unique_layers: unique.delta() as usize,
        bytes_fetched: bytes.delta(),
        layer_fetches_skipped: skipped.delta(),
        failed_auth: auth.delta() as usize,
        failed_no_latest: no_latest.delta() as usize,
        failed_other: other.delta() as usize,
        retries: counters.retries(),
        gave_up: counters.gave_up(),
        corrupt_retries: counters.corrupt_retries(),
        backoff_sleep: counters.backoff_sleep(),
        simulated_transfer: std::time::Duration::ZERO,
    };
    set_dedup_ratio(obs, &download);
    StudyData {
        crawl: crawl_result.report,
        download,
        layers,
        images,
        image_layers,
        pulls,
        analyze_errors: 0,
        size_scale: hub.config.size_scale,
        seed: hub.config.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_synth::{generate_hub, SynthConfig};

    fn study() -> StudyData {
        let hub = generate_hub(&SynthConfig::tiny(11).with_repos(40));
        run_study(&hub, 4)
    }

    #[test]
    fn pipeline_end_to_end() {
        let s = study();
        assert_eq!(s.crawl.distinct_repos, 40);
        assert!(s.download.images_downloaded > 20);
        assert!(s.download.failures() > 0);
        assert_eq!(s.analyze_errors, 0, "synthetic layers must all decode");
        assert_eq!(s.images.len(), s.download.images_downloaded);
        assert_eq!(s.layers.len(), s.download.unique_layers);
        assert_eq!(s.pulls.len(), 40);
    }

    #[test]
    fn image_profiles_reference_analyzed_layers() {
        let s = study();
        for img in &s.images {
            for d in &img.layers {
                assert!(s.layers.contains_key(d), "image references unanalyzed layer");
            }
        }
    }

    #[test]
    fn streaming_matches_batch() {
        let hub = generate_hub(&SynthConfig::tiny(17).with_repos(40));
        let batch = run_study(&hub, 4);
        let streaming = run_study_streaming(&hub, 4);
        assert_eq!(streaming.crawl, batch.crawl);
        assert_eq!(streaming.download.images_downloaded, batch.download.images_downloaded);
        assert_eq!(streaming.download.unique_layers, batch.download.unique_layers);
        assert_eq!(streaming.download.failed_auth, batch.download.failed_auth);
        assert_eq!(streaming.download.failed_no_latest, batch.download.failed_no_latest);
        assert_eq!(streaming.download.bytes_fetched, batch.download.bytes_fetched);
        assert_eq!(streaming.layers.len(), batch.layers.len());
        for (d, p) in &batch.layers {
            assert_eq!(streaming.layers.get(d), Some(p), "layer profile mismatch");
        }
        assert_eq!(streaming.images.len(), batch.images.len());
        for (a, b) in streaming.images.iter().zip(&batch.images) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn streaming_matches_batch_under_gave_up() {
        use dhub_faults::{
            FaultConfig, FaultInjector, FaultKind, FaultOp, RetryPolicy, ALL_FAULT_KINDS,
        };
        use std::sync::Arc;
        // Corrupt-only blob faults with a zero retry budget: a good chunk
        // of fetches are abandoned, and both pipeline shapes must agree on
        // which images failed and which shared layers still made it into
        // the corpus. Fresh injectors replay the identical fault stream.
        let cfg = ALL_FAULT_KINDS
            .iter()
            .fold(FaultConfig::off().with_rate(FaultOp::Blob, 0.4), |c, &k| {
                c.with_weight(k, u32::from(k == FaultKind::Corrupt))
            });
        let policy = RetryPolicy::none();

        let hub = generate_hub(&SynthConfig::tiny(19).with_repos(40));
        hub.registry.set_fault_injector(Some(Arc::new(FaultInjector::new(cfg.clone()))));
        let batch = run_study_with(&hub, 4, &policy);

        let hub = generate_hub(&SynthConfig::tiny(19).with_repos(40));
        hub.registry.set_fault_injector(Some(Arc::new(FaultInjector::new(cfg))));
        let streaming = run_study_streaming_with(&hub, 4, &policy);

        assert!(batch.download.gave_up > 0, "40 % faults with no retries must abandon fetches");
        assert_eq!(streaming.download.images_downloaded, batch.download.images_downloaded);
        assert_eq!(streaming.download.failed_other, batch.download.failed_other);
        assert_eq!(streaming.download.failed_auth, batch.download.failed_auth);
        assert_eq!(streaming.download.failed_no_latest, batch.download.failed_no_latest);
        assert_eq!(streaming.download.gave_up, batch.download.gave_up);
        assert_eq!(streaming.download.unique_layers, batch.download.unique_layers);
        assert_eq!(streaming.download.bytes_fetched, batch.download.bytes_fetched);
        assert_eq!(streaming.layers.len(), batch.layers.len());
        for (d, p) in &batch.layers {
            assert_eq!(streaming.layers.get(d), Some(p), "shared-layer corpus diverged");
        }
        assert_eq!(streaming.images, batch.images);
    }

    #[test]
    fn store_study_matches_plain_study() {
        let hub = generate_hub(&SynthConfig::tiny(23).with_repos(40));
        let plain = run_study(&hub, 4);
        let store = dhub_dedupstore::DedupStore::new();
        let fused = run_study_store(&hub, 4, &RetryPolicy::default(), &store);
        assert_eq!(fused.crawl, plain.crawl);
        assert_eq!(fused.layers.len(), plain.layers.len());
        for (d, p) in &plain.layers {
            assert_eq!(fused.layers.get(d), Some(p), "fused profile diverged");
        }
        assert_eq!(fused.images, plain.images);
        assert_eq!(fused.analyze_errors, plain.analyze_errors);
        // The store holds exactly the analyzed unique layers.
        assert_eq!(store.stats().layers, fused.layers.len());
        assert!(store.stats().dedup_factor() >= 1.0);
        // Every stored layer reconstructs.
        for d in fused.layers.keys() {
            assert!(store.reconstruct_tar(d).is_ok());
        }
    }

    #[test]
    fn deterministic_pipeline() {
        let hub = generate_hub(&SynthConfig::tiny(13).with_repos(30));
        let a = run_study(&hub, 2);
        let b = run_study(&hub, 8);
        assert_eq!(a.layers.len(), b.layers.len());
        assert_eq!(a.images.len(), b.images.len());
        let fa: u64 = a.layer_slice().iter().map(|l| l.file_count).sum();
        let fb: u64 = b.layer_slice().iter().map(|l| l.file_count).sum();
        assert_eq!(fa, fb);
    }
}
