//! The queued pipeline: the crawl → download → analyze study executed by
//! a lease-based worker fleet over a durable job queue (`dhub-queue`),
//! ingesting into the persistent dedup store.
//!
//! Work decomposes into three job kinds, chained by dynamic expansion:
//!
//! - `page:<n>` — fetch one search-results page (same faulted fetch path
//!   as the sequential crawl). Page 0 learns the pagination depth and
//!   expands into `page:1..N`.
//! - `image:<repo>` — resolve the repo's `latest` manifest; on success,
//!   expand into one `layer:<digest>` job per referenced layer. Seeding
//!   is idempotent and layer ids are digest-derived, so a layer shared
//!   by many images is seeded (and fetched) exactly once — the queue
//!   *is* the unique-layer dedup.
//! - `layer:<digest>` — fetch the blob, analyze it, and ingest it into
//!   the shared [`PersistentDedupStore`]; the result record carries the
//!   serialized [`LayerProfile`].
//!
//! Determinism: each job's payload is a pure function of its spec — the
//! fault/retry streams are keyed by logical resource (page number, repo,
//! digest), never by worker or wall clock — and every aggregate below is
//! computed from the result set in sorted job order. Worker count,
//! lease-fault abandons, and fleet kills change only *who* executes a
//! job and *when*; the committed bytes, and therefore the assembled
//! [`StudyData`], the tables, and the store stats, are byte-identical to
//! the clean single-process run. The chaos suite gates on exactly that.

use crate::pipeline::StudyData;
use dhub_analyzer::{image_profiles, ImageInput};
use dhub_crawler::{fetch_search_page, CrawlReport, CrawlResult};
use dhub_dedup::ImageLayers;
use dhub_dedupstore::{analyze_and_ingest_persistent, PersistentDedupStore};
use dhub_digest::FxHashMap;
use dhub_downloader::{get_blob_verified, get_manifest_with_retry, RetryCounters};
use dhub_faults::{FaultInjector, RetryPolicy};
use dhub_json::Json;
use dhub_model::{Digest, FileKind, FileRecord, LayerProfile, RepoName};
use dhub_obs::{span, MetricsRegistry};
use dhub_queue::{
    DurableQueue, JobOutcome, JobSpec, LeaseConfig, QueueError, RunReport, WorkerConfig,
};
use dhub_registry::NetworkModel;
use dhub_synth::SyntheticHub;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

/// Parameters for a queued study run.
#[derive(Clone)]
pub struct QueuedStudyConfig {
    /// Worker thread count.
    pub workers: usize,
    /// Retry policy for manifest/blob/page fetches (same role as in the
    /// sequential pipeline).
    pub policy: RetryPolicy,
    /// Lease scheduling parameters.
    pub lease: LeaseConfig,
    /// Kill the fleet after this many commits (crash-resume harness);
    /// the run returns [`QueueError::Killed`] and a later run resumes.
    pub max_commits: Option<u64>,
    /// Lease-fault injection (usually the hub's injector, so
    /// `FaultOp::Lease` shares the seeded plan with the transport ops).
    pub lease_faults: Option<Arc<FaultInjector>>,
    /// Sleep out the WAN transfer time of each fetched blob. The
    /// sequential pipeline only *records* simulated transfer; the
    /// throughput benches enable real pacing so multi-worker overlap is
    /// measurable.
    pub pace_network: bool,
}

impl Default for QueuedStudyConfig {
    fn default() -> QueuedStudyConfig {
        QueuedStudyConfig {
            workers: 1,
            policy: RetryPolicy::default(),
            lease: LeaseConfig::default(),
            max_commits: None,
            lease_faults: None,
            pace_network: false,
        }
    }
}

/// [`LayerProfile`] as a JSON value, for embedding in a layer job's
/// result record. File kinds travel by taxonomy index ([`FileKind::ALL`]
/// is a fixed order).
pub fn profile_json(p: &LayerProfile) -> Json {
    let mut root = Json::obj();
    root.set("digest", p.digest.to_docker_string());
    root.set("fls", p.fls);
    root.set("cls", p.cls);
    root.set("dirCount", p.dir_count);
    root.set("fileCount", p.file_count);
    root.set("maxDepth", p.max_depth);
    let files: Vec<Json> = p
        .files
        .iter()
        .map(|f| {
            let mut j = Json::obj();
            j.set("path", f.path.as_str());
            j.set("digest", f.digest.to_docker_string());
            j.set("kind", f.kind.index());
            j.set("size", f.size);
            j
        })
        .collect();
    root.set("files", Json::Arr(files));
    root
}

/// Serializes a [`LayerProfile`] for a layer job's result record.
pub fn profile_to_json(p: &LayerProfile) -> String {
    profile_json(p).to_string()
}

/// Inverse of [`FileKind::index`]. `FileKind::ALL` holds only the 50
/// leaf kinds; `Video`, `OtherBinary` and `Empty` live past it in the
/// discriminant space, so the search must cover all of them.
fn kind_from_index(idx: usize) -> Option<FileKind> {
    FileKind::ALL
        .iter()
        .copied()
        .chain([FileKind::Video, FileKind::OtherBinary, FileKind::Empty])
        .find(|k| k.index() == idx)
}

/// Parses a serialized [`LayerProfile`] back.
pub fn profile_from_json(text: &str) -> Option<LayerProfile> {
    profile_from_value(&dhub_json::parse(text).ok()?)
}

/// Rebuilds a [`LayerProfile`] from its already-parsed JSON value (the
/// assembly path reads it straight out of the result payload without a
/// detour through text).
pub fn profile_from_value(j: &Json) -> Option<LayerProfile> {
    let files = j
        .get("files")?
        .as_arr()?
        .iter()
        .map(|f| {
            Some(FileRecord {
                path: f.get("path")?.as_str()?.to_string(),
                digest: Digest::parse(f.get("digest")?.as_str()?)?,
                kind: kind_from_index(f.get("kind")?.as_u64()? as usize)?,
                size: f.get("size")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(LayerProfile {
        digest: Digest::parse(j.get("digest")?.as_str()?)?,
        fls: j.get("fls")?.as_u64()?,
        cls: j.get("cls")?.as_u64()?,
        dir_count: j.get("dirCount")?.as_u64()?,
        file_count: j.get("fileCount")?.as_u64()?,
        max_depth: j.get("maxDepth")?.as_u64()?,
        files,
    })
}

fn page_job(n: usize) -> JobSpec {
    JobSpec::with_payload(format!("page:{n}"), "page", n.to_string())
}

fn image_job(repo: &RepoName) -> JobSpec {
    JobSpec::with_payload(format!("image:{}", repo.full()), "image", repo.full())
}

fn layer_job(digest: &Digest) -> JobSpec {
    let s = digest.to_docker_string();
    JobSpec::with_payload(format!("layer:{s}"), "layer", s)
}

/// The executor: one pure-ish function from job spec to result value
/// plus expansions. All state it touches (registry, store) is shared and
/// idempotent. The caller serializes the value into the durable result
/// payload (and caches it for assembly).
fn execute_job(
    hub: &SyntheticHub,
    store: &PersistentDedupStore,
    cfg: &QueuedStudyConfig,
    counters: &RetryCounters,
    net: &NetworkModel,
    obs: &MetricsRegistry,
    spec: &JobSpec,
) -> Result<(Json, Vec<JobSpec>), String> {
    let _span = span!(obs, "queue_job", spec.id);
    match spec.kind.as_str() {
        "page" => {
            let page: usize = spec.payload.parse().map_err(|_| "bad page payload")?;
            let injector = hub.registry.fault_injector();
            let fetch = fetch_search_page(&hub.search, page, injector.as_deref(), &cfg.policy);
            let mut out = Json::obj();
            let mut new_jobs = Vec::new();
            match fetch.parsed {
                Some(parsed) => {
                    out.set("fetched", true);
                    out.set("totalPages", parsed.info.total_pages);
                    let repos: Vec<Json> =
                        parsed.repos.iter().map(|r| Json::Str(r.full())).collect();
                    out.set("repos", Json::Arr(repos));
                    if page == 0 {
                        new_jobs = (1..parsed.info.total_pages).map(page_job).collect();
                    }
                }
                None => {
                    out.set("fetched", false);
                }
            }
            out.set("retries", fetch.retries);
            out.set("backoffNs", fetch.backoff.as_nanos() as u64);
            Ok((out, new_jobs))
        }
        "image" => {
            let repo = RepoName::parse(&spec.payload).ok_or("bad image payload")?;
            let mut out = Json::obj();
            let mut new_jobs = Vec::new();
            match get_manifest_with_retry(&hub.registry, &repo, "latest", &cfg.policy, counters) {
                Ok(sess) => {
                    out.set("status", "ok");
                    out.set("manifestDigest", sess.manifest_digest.to_docker_string());
                    let layers: Vec<Json> = sess
                        .manifest
                        .layers
                        .iter()
                        .map(|l| {
                            let mut j = Json::obj();
                            j.set("digest", l.digest.to_docker_string());
                            j.set("size", l.size);
                            j
                        })
                        .collect();
                    out.set("layers", Json::Arr(layers));
                    // One layer job per digest; the durable queue dedups
                    // ids, so shared layers are fetched exactly once.
                    new_jobs = sess.manifest.layers.iter().map(|l| layer_job(&l.digest)).collect();
                }
                Err(dhub_registry::ApiError::AuthRequired) => {
                    out.set("status", "auth");
                }
                Err(dhub_registry::ApiError::TagNotFound) => {
                    out.set("status", "no_latest");
                }
                Err(_) => {
                    out.set("status", "other");
                }
            }
            Ok((out, new_jobs))
        }
        "layer" => {
            let digest = Digest::parse(&spec.payload).ok_or("bad layer payload")?;
            let mut out = Json::obj();
            match get_blob_verified(&hub.registry, &digest, &cfg.policy, counters) {
                Ok(blob) => {
                    if cfg.pace_network {
                        std::thread::sleep(net.transfer_time(blob.len() as u64));
                    }
                    let analyzed = dhub_par::with_scratch(|scratch| {
                        analyze_and_ingest_persistent(store, digest, &blob, scratch)
                    });
                    match analyzed {
                        Ok((profile, ingest)) => {
                            // AlreadyIngested is the resume path (a killed
                            // run ingested the layer but lost the result
                            // record); any other ingest error is real.
                            if let Err(e) = ingest {
                                let benign = matches!(
                                    e,
                                    dhub_dedupstore::PersistentError::Store(
                                        dhub_dedupstore::StoreError::AlreadyIngested
                                    )
                                );
                                if !benign {
                                    return Err(format!("ingest {digest:?}: {e}"));
                                }
                            }
                            out.set("status", "ok");
                            out.set("cls", blob.len());
                            out.set("profile", profile_json(&profile));
                        }
                        Err(e) => {
                            out.set("status", "analyze_error");
                            out.set("cls", blob.len());
                            out.set("error", format!("{e}").as_str());
                        }
                    }
                }
                Err(_) => {
                    out.set("status", "gave_up");
                }
            }
            Ok((out, Vec::new()))
        }
        other => Err(format!("unknown job kind {other}")),
    }
}

/// In-memory copies of result payloads committed by *this* run, keyed by
/// job id. Assembly consults it before falling back to the durable
/// record: the cached value is the very `Json` the payload was serialized
/// from, so a clean run never re-parses its own results, while resumed
/// jobs (committed by an earlier, killed process) still read from disk.
type ResultCache = dhub_sync::Mutex<FxHashMap<String, Arc<Json>>>;

fn parse_payload(queue: &DurableQueue, cache: &ResultCache, id: &str) -> Result<Arc<Json>, QueueError> {
    if let Some(j) = cache.lock().get(id) {
        return Ok(j.clone());
    }
    let payload = queue
        .result(id)?
        .unwrap_or_else(|| panic!("drained queue is missing result for {id}"));
    Ok(Arc::new(
        dhub_json::parse(&payload)
            .unwrap_or_else(|_| panic!("unparseable result payload for {id}")),
    ))
}

/// Runs the full study through the durable queue with `cfg.workers`
/// workers, resuming from whatever job/result state `queue` and `store`
/// already hold. Returns [`QueueError::Killed`] when the commit budget
/// stopped the fleet (rerun to resume) and [`QueueError::Quarantined`]
/// when poison jobs survived their lease budget.
pub fn run_study_queued_obs(
    hub: &SyntheticHub,
    store: &PersistentDedupStore,
    queue: &DurableQueue,
    cfg: &QueuedStudyConfig,
    obs: &MetricsRegistry,
) -> Result<StudyData, QueueError> {
    let counters = RetryCounters::on(obs);
    let net = NetworkModel::wan();
    let cache: ResultCache = dhub_sync::Mutex::new(FxHashMap::default());
    let exec = |spec: &JobSpec| -> Result<JobOutcome, String> {
        let (out, new_jobs) = execute_job(hub, store, cfg, &counters, &net, obs, spec)?;
        let _ser = span!(obs, "queued_serialize", spec.id);
        let payload = out.to_string();
        cache.lock().insert(spec.id.clone(), Arc::new(out));
        Ok(JobOutcome { payload, new_jobs })
    };
    let run = |initial: &[JobSpec], budget: Option<u64>| -> Result<RunReport, QueueError> {
        let wcfg = WorkerConfig {
            workers: cfg.workers,
            lease: cfg.lease,
            max_commits: budget,
            faults: cfg.lease_faults.clone(),
        };
        let report = dhub_queue::run_workers(queue, &wcfg, initial, &exec)?;
        if report.killed {
            return Err(QueueError::Killed);
        }
        if !report.quarantined.is_empty() {
            return Err(QueueError::Quarantined(report.quarantined));
        }
        Ok(report)
    };

    // Phase 1: crawl pages (page:0 expands into the rest; already-seeded
    // image/layer jobs from an interrupted run drain alongside).
    let phase1 = {
        let _stage = span!(obs, "queued_crawl");
        run(&[page_job(0)], cfg.max_commits)?
    };

    // Aggregate pages in page order — same dedup walk as the sequential
    // crawl — then seed one image job per repository.
    let loaded = queue.load()?;
    let mut pages: BTreeMap<usize, Arc<Json>> = BTreeMap::new();
    for (spec, _) in &loaded {
        if spec.kind == "page" {
            let n: usize = spec.payload.parse().expect("page payload is a number");
            pages.insert(n, parse_payload(queue, &cache, &spec.id)?);
        }
    }
    let mut seen: BTreeSet<RepoName> = BTreeSet::new();
    let mut crawl = CrawlReport::default();
    for payload in pages.values() {
        crawl.page_retries += payload.get("retries").and_then(Json::as_u64).unwrap_or(0) as usize;
        crawl.backoff_sleep +=
            Duration::from_nanos(payload.get("backoffNs").and_then(Json::as_u64).unwrap_or(0));
        if payload.get("fetched").and_then(Json::as_bool) != Some(true) {
            crawl.pages_gave_up += 1;
            continue;
        }
        crawl.pages_fetched += 1;
        for r in payload.get("repos").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = RepoName::parse(r.as_str().expect("repo name payload"))
                .expect("repo name parses");
            crawl.raw_results += 1;
            if !seen.insert(name) {
                crawl.dedup_hits += 1;
            }
        }
    }
    // The official list is public knowledge, exactly as in the
    // sequential crawl (the slash trick cannot find it).
    for o in hub.registry.repo_names().into_iter().filter(|r| r.is_official()) {
        seen.insert(o);
    }
    crawl.distinct_repos = seen.len();
    let repos: Vec<RepoName> = seen.into_iter().collect();

    // Phase 2: images (each expanding into its layer jobs).
    let image_jobs: Vec<JobSpec> = repos.iter().map(image_job).collect();
    let budget2 = cfg.max_commits.map(|b| b.saturating_sub(phase1.committed));
    {
        let _stage = span!(obs, "queued_download");
        run(&image_jobs, budget2)?;
    }

    // Assembly, all from durable result records in sorted job order.
    let _assemble = span!(obs, "queued_assemble");
    let loaded = queue.load()?;
    let mut layers: FxHashMap<Digest, LayerProfile> = FxHashMap::default();
    let mut fetched_layers: BTreeMap<Digest, u64> = BTreeMap::new();
    let mut failed_digests: BTreeSet<Digest> = BTreeSet::new();
    let mut layer_jobs = 0usize;
    let mut analyze_errors = 0usize;
    for (spec, _) in &loaded {
        if spec.kind != "layer" {
            continue;
        }
        layer_jobs += 1;
        let digest = Digest::parse(&spec.payload).expect("layer payload is a digest");
        let payload = parse_payload(queue, &cache, &spec.id)?;
        match payload.get("status").and_then(Json::as_str).unwrap_or("") {
            "ok" => {
                let cls = payload.get("cls").and_then(Json::as_u64).unwrap_or(0);
                fetched_layers.insert(digest, cls);
                let profile =
                    profile_from_value(payload.get("profile").expect("ok layer has a profile"))
                        .expect("layer profile roundtrips");
                layers.insert(digest, profile);
            }
            "analyze_error" => {
                let cls = payload.get("cls").and_then(Json::as_u64).unwrap_or(0);
                fetched_layers.insert(digest, cls);
                analyze_errors += 1;
            }
            _ => {
                failed_digests.insert(digest);
            }
        }
    }

    let mut download = dhub_downloader::DownloadReport {
        retries: counters.retries(),
        gave_up: counters.gave_up(),
        corrupt_retries: counters.corrupt_retries(),
        backoff_sleep: counters.backoff_sleep(),
        ..Default::default()
    };
    let mut inputs: Vec<ImageInput> = Vec::new();
    let mut image_layers: Vec<ImageLayers> = Vec::new();
    let mut manifest_refs = 0usize;
    for repo in &repos {
        let payload = parse_payload(queue, &cache, &format!("image:{}", repo.full()))?;
        match payload.get("status").and_then(Json::as_str).unwrap_or("") {
            "ok" => {
                let refs: Vec<(Digest, u64)> = payload
                    .get("layers")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|l| {
                        (
                            Digest::parse(l.get("digest").and_then(Json::as_str).unwrap())
                                .expect("layer ref digest"),
                            l.get("size").and_then(Json::as_u64).unwrap_or(0),
                        )
                    })
                    .collect();
                // Every manifest-ok image's refs count toward the skip
                // tally (the sequential claim race charges them too),
                // even when the image is reclassified below.
                manifest_refs += refs.len();
                // An image whose blob fetch was abandoned is reclassified
                // as a failure, exactly like the sequential path.
                if refs.iter().any(|(d, _)| failed_digests.contains(d)) {
                    download.failed_other += 1;
                    continue;
                }
                download.images_downloaded += 1;
                image_layers.push(ImageLayers { layers: refs.iter().map(|(d, _)| *d).collect() });
                inputs.push(ImageInput {
                    repo: repo.clone(),
                    manifest_digest: Digest::parse(
                        payload.get("manifestDigest").and_then(Json::as_str).unwrap(),
                    )
                    .expect("manifest digest parses"),
                    layers: refs,
                });
            }
            "auth" => download.failed_auth += 1,
            "no_latest" => download.failed_no_latest += 1,
            _ => download.failed_other += 1,
        }
    }
    download.unique_layers = fetched_layers.len();
    download.bytes_fetched = fetched_layers.values().sum();
    download.layer_fetches_skipped = (manifest_refs - layer_jobs.min(manifest_refs)) as u64;

    let images = image_profiles(&inputs, &layers);
    let pulls: Vec<(RepoName, u64)> =
        repos.iter().filter_map(|r| hub.registry.pull_count(r).map(|c| (r.clone(), c))).collect();

    let refs_total = download.unique_layers as u64 + download.layer_fetches_skipped;
    if refs_total > 0 {
        obs.gauge("dhub_layer_dedup_ratio")
            .set(download.layer_fetches_skipped as f64 / refs_total as f64);
    }

    Ok(StudyData {
        crawl,
        download,
        layers,
        images,
        image_layers,
        pulls,
        analyze_errors,
        size_scale: hub.config.size_scale,
        seed: hub.config.seed,
    })
}

/// [`run_study_queued_obs`] with a fresh metrics registry.
pub fn run_study_queued(
    hub: &SyntheticHub,
    store: &PersistentDedupStore,
    queue: &DurableQueue,
    cfg: &QueuedStudyConfig,
) -> Result<StudyData, QueueError> {
    run_study_queued_obs(hub, store, queue, cfg, &MetricsRegistry::new())
}

/// Re-exported crawl result shape for callers that only need the crawl
/// phase of a queued run (reserved for the sharded-crawl roadmap item).
pub type QueuedCrawl = CrawlResult;

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_persist::Publisher;
    use dhub_synth::{generate_hub, SynthConfig};
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dhub-distributed-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn profile_json_roundtrip() {
        let hub = generate_hub(&SynthConfig::tiny(5).with_repos(10));
        let s = crate::pipeline::run_study(&hub, 2);
        for p in s.layers.values() {
            let back = profile_from_json(&profile_to_json(p)).unwrap();
            assert_eq!(&back, p);
        }
    }

    #[test]
    fn queued_study_matches_sequential() {
        let plain = {
            let hub = generate_hub(&SynthConfig::tiny(31).with_repos(24));
            crate::pipeline::run_study(&hub, 2)
        };
        // Fresh hub, same config: pull counters are live registry state,
        // so each pipeline run must observe them from the same baseline.
        let hub = generate_hub(&SynthConfig::tiny(31).with_repos(24));
        let root = tmp_root("match");
        let store = PersistentDedupStore::open(root.join("store"), Publisher::new()).unwrap();
        let queue = DurableQueue::open(root.join("queue"), Publisher::new()).unwrap();
        let cfg = QueuedStudyConfig { workers: 4, ..QueuedStudyConfig::default() };
        let queued = run_study_queued(&hub, &store, &queue, &cfg).unwrap();

        assert_eq!(queued.crawl.raw_results, plain.crawl.raw_results);
        assert_eq!(queued.crawl.distinct_repos, plain.crawl.distinct_repos);
        assert_eq!(queued.crawl.pages_fetched, plain.crawl.pages_fetched);
        assert_eq!(queued.crawl.dedup_hits, plain.crawl.dedup_hits);
        assert_eq!(queued.download.images_downloaded, plain.download.images_downloaded);
        assert_eq!(queued.download.unique_layers, plain.download.unique_layers);
        assert_eq!(queued.download.bytes_fetched, plain.download.bytes_fetched);
        assert_eq!(queued.download.layer_fetches_skipped, plain.download.layer_fetches_skipped);
        assert_eq!(queued.download.failed_auth, plain.download.failed_auth);
        assert_eq!(queued.download.failed_no_latest, plain.download.failed_no_latest);
        assert_eq!(queued.download.failed_other, plain.download.failed_other);
        assert_eq!(queued.layers, plain.layers);
        assert_eq!(queued.images, plain.images);
        assert_eq!(queued.image_layers.len(), plain.image_layers.len());
        for (a, b) in queued.image_layers.iter().zip(&plain.image_layers) {
            assert_eq!(a.layers, b.layers);
        }
        assert_eq!(queued.pulls, plain.pulls);
        assert_eq!(queued.analyze_errors, plain.analyze_errors);
        // The store holds exactly the analyzed unique layers.
        assert_eq!(store.mem().stats().layers, queued.layers.len());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn killed_run_resumes_identically() {
        let hub = generate_hub(&SynthConfig::tiny(37).with_repos(16));
        let root = tmp_root("resume");

        let clean_root = tmp_root("resume-clean");
        let clean_store =
            PersistentDedupStore::open(clean_root.join("store"), Publisher::new()).unwrap();
        let clean_queue = DurableQueue::open(clean_root.join("queue"), Publisher::new()).unwrap();
        let clean = run_study_queued(
            &hub,
            &clean_store,
            &clean_queue,
            &QueuedStudyConfig::default(),
        )
        .unwrap();

        // Kill after a handful of commits, then resume with fresh opens.
        {
            let store = PersistentDedupStore::open(root.join("store"), Publisher::new()).unwrap();
            let queue = DurableQueue::open(root.join("queue"), Publisher::new()).unwrap();
            let cfg = QueuedStudyConfig {
                workers: 3,
                max_commits: Some(6),
                ..QueuedStudyConfig::default()
            };
            match run_study_queued(&hub, &store, &queue, &cfg) {
                Err(QueueError::Killed) => {}
                other => panic!("expected killed run, got {:?}", other.map(|_| "study")),
            }
        }
        let store = PersistentDedupStore::open(root.join("store"), Publisher::new()).unwrap();
        let queue = DurableQueue::open(root.join("queue"), Publisher::new()).unwrap();
        let cfg = QueuedStudyConfig { workers: 2, ..QueuedStudyConfig::default() };
        let resumed = run_study_queued(&hub, &store, &queue, &cfg).unwrap();

        assert_eq!(resumed.layers, clean.layers);
        assert_eq!(resumed.images, clean.images);
        assert_eq!(resumed.download.images_downloaded, clean.download.images_downloaded);
        assert_eq!(resumed.download.unique_layers, clean.download.unique_layers);
        assert_eq!(resumed.download.bytes_fetched, clean.download.bytes_fetched);
        assert_eq!(
            store.mem().stats().dedup_factor().to_bits(),
            clean_store.mem().stats().dedup_factor().to_bits()
        );
        let _ = std::fs::remove_dir_all(root);
        let _ = std::fs::remove_dir_all(clean_root);
    }
}
