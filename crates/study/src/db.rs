//! The persisted study database: typed columnar tables written next to
//! the durable dedup store, answering Table-1-style questions without
//! re-running the pipeline.
//!
//! One pipeline run writes five tables under `<store-dir>/db/`:
//!
//! | table        | one row per      | columns                                     |
//! |--------------|------------------|---------------------------------------------|
//! | `layers.tbl` | unique layer     | digest, cls, fls, files, dirs, depth        |
//! | `files.tbl`  | file in a layer  | layer, path, kind, group, size              |
//! | `images.tbl` | downloaded image | repo, manifest, layers, fis, cis, files     |
//! | `dedup.tbl`  | store (single)   | layers, objects, physical, logical, conventional, factor |
//! | `study.tbl`  | Table-1 counter  | key, value                                  |
//!
//! Rows are emitted in deterministic order (layers sorted by digest,
//! files in archive order within each layer, images sorted by repo), and
//! every numeric column round-trips bit-exactly, so two runs over the
//! same hub — or one run reloaded from disk — produce byte-identical
//! table files and byte-identical query answers.

use crate::pipeline::StudyData;
use dhub_dedupstore::StoreStats;
use dhub_persist::{hex_of, ColType, PersistError, Predicate, Publisher, Schema, Table, Value};
use std::path::{Path, PathBuf};

/// The five study tables, in memory.
pub struct StudyDb {
    pub layers: Table,
    pub files: Table,
    pub images: Table,
    pub dedup: Table,
    pub study: Table,
}

fn layers_schema() -> Schema {
    Schema::new(&[
        ("digest", ColType::Str),
        ("cls", ColType::U64),
        ("fls", ColType::U64),
        ("files", ColType::U64),
        ("dirs", ColType::U64),
        ("depth", ColType::U64),
    ])
}

fn files_schema() -> Schema {
    Schema::new(&[
        ("layer", ColType::Str),
        ("path", ColType::Str),
        ("kind", ColType::Str),
        ("group", ColType::Str),
        ("size", ColType::U64),
    ])
}

fn images_schema() -> Schema {
    Schema::new(&[
        ("repo", ColType::Str),
        ("manifest", ColType::Str),
        ("layers", ColType::U64),
        ("fis", ColType::U64),
        ("cis", ColType::U64),
        ("files", ColType::U64),
    ])
}

fn dedup_schema() -> Schema {
    Schema::new(&[
        ("layers", ColType::U64),
        ("uniqueObjects", ColType::U64),
        ("physicalBytes", ColType::U64),
        ("logicalBytes", ColType::U64),
        ("conventionalBytes", ColType::U64),
        ("factor", ColType::F64),
    ])
}

fn study_schema() -> Schema {
    Schema::new(&[("key", ColType::Str), ("value", ColType::U64)])
}

impl StudyDb {
    /// Builds the tables from one pipeline run plus the dedup store's
    /// aggregate stats.
    pub fn build(data: &StudyData, store: &StoreStats) -> StudyDb {
        let mut layers = Table::new(layers_schema());
        let mut files = Table::new(files_schema());
        for p in data.layer_slice() {
            let hex = hex_of(&p.digest);
            layers
                .push_row(vec![
                    Value::Str(hex.clone()),
                    Value::U64(p.cls),
                    Value::U64(p.fls),
                    Value::U64(p.file_count),
                    Value::U64(p.dir_count),
                    Value::U64(p.max_depth),
                ])
                .expect("layers schema matches");
            for f in &p.files {
                files
                    .push_row(vec![
                        Value::Str(hex.clone()),
                        Value::Str(f.path.clone()),
                        Value::Str(f.kind.label().to_string()),
                        Value::Str(f.kind.group().label().to_string()),
                        Value::U64(f.size),
                    ])
                    .expect("files schema matches");
            }
        }

        let mut images = Table::new(images_schema());
        for img in &data.images {
            images
                .push_row(vec![
                    Value::Str(img.repo.to_string()),
                    Value::Str(hex_of(&img.manifest_digest)),
                    Value::U64(img.layer_count() as u64),
                    Value::U64(img.fis),
                    Value::U64(img.cis),
                    Value::U64(img.file_count),
                ])
                .expect("images schema matches");
        }

        let mut dedup = Table::new(dedup_schema());
        dedup
            .push_row(vec![
                Value::U64(store.layers as u64),
                Value::U64(store.unique_objects as u64),
                Value::U64(store.physical_bytes),
                Value::U64(store.logical_bytes),
                Value::U64(store.conventional_bytes),
                Value::F64(store.dedup_factor()),
            ])
            .expect("dedup schema matches");

        // Table-1 counters, keyed by the human label `summary` prints.
        let total_files: u64 = data.layer_slice().iter().map(|l| l.file_count).sum();
        let layer_bytes: u64 = data.layer_slice().iter().map(|l| l.cls).sum();
        let mut study = Table::new(study_schema());
        let rows: Vec<(&str, u64)> = vec![
            ("search results (raw)", data.crawl.raw_results as u64),
            ("distinct repositories", data.crawl.distinct_repos as u64),
            ("images downloaded", data.download.images_downloaded as u64),
            ("images failed", data.download.failures() as u64),
            ("failed: auth required", data.download.failed_auth as u64),
            ("failed: no latest tag", data.download.failed_no_latest as u64),
            ("unique compressed layers", data.download.unique_layers as u64),
            ("layer fetches skipped", data.download.layer_fetches_skipped),
            ("files analyzed", total_files),
            ("layer bytes analyzed", layer_bytes),
            ("compressed bytes fetched", data.download.bytes_fetched),
            ("analyze errors", data.analyze_errors as u64),
            ("size scale", data.size_scale),
            ("seed", data.seed),
        ];
        for (k, v) in rows {
            study
                .push_row(vec![Value::Str(k.to_string()), Value::U64(v)])
                .expect("study schema matches");
        }

        StudyDb { layers, files, images, dedup, study }
    }

    fn table_path(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.tbl"))
    }

    /// Publishes all five tables under `dir` (created if needed).
    pub fn save(&self, dir: &Path, publisher: &Publisher) -> Result<(), PersistError> {
        std::fs::create_dir_all(dir)?;
        dhub_persist::fsync_dir(dir.parent().unwrap_or(dir))?;
        for (name, table) in [
            ("layers", &self.layers),
            ("files", &self.files),
            ("images", &self.images),
            ("dedup", &self.dedup),
            ("study", &self.study),
        ] {
            table.save(&Self::table_path(dir, name), publisher)?;
        }
        Ok(())
    }

    /// Loads all five tables from `dir`.
    pub fn load(dir: &Path) -> Result<StudyDb, PersistError> {
        Ok(StudyDb {
            layers: Table::load(&Self::table_path(dir, "layers"))?,
            files: Table::load(&Self::table_path(dir, "files"))?,
            images: Table::load(&Self::table_path(dir, "images"))?,
            dedup: Table::load(&Self::table_path(dir, "dedup"))?,
            study: Table::load(&Self::table_path(dir, "study"))?,
        })
    }

    /// The persisted dedup factor (bit-exact: the f64 column stores raw
    /// bits).
    pub fn dedup_factor(&self) -> f64 {
        self.dedup.col_f64("factor").map(|c| c[0]).unwrap_or(1.0)
    }

    /// Table-1-style summary lines, rebuilt purely from persisted rows —
    /// the `dhub query summary` payload.
    pub fn summary(&self) -> Vec<String> {
        let keys = self.study.col_str("key").expect("study table has key column");
        let values = self.study.col_u64("value").expect("study table has value column");
        let mut rows: Vec<String> = keys
            .iter()
            .zip(values)
            .map(|(k, v)| format!("{k:28}: {v}"))
            .collect();
        rows.push(format!("{:28}: {}", "empty layers", self.empty_layers()));
        rows.push(format!("{:28}: {:.6}x", "dedup factor", self.dedup_factor()));
        rows
    }

    /// Dedup-store lines for `dhub query dedup`.
    pub fn dedup_summary(&self) -> Vec<String> {
        let col = |n: &str| self.dedup.col_u64(n).expect("dedup table column")[0];
        vec![
            format!("{:20}: {}", "layers", col("layers")),
            format!("{:20}: {}", "unique objects", col("uniqueObjects")),
            format!("{:20}: {}", "physical bytes", col("physicalBytes")),
            format!("{:20}: {}", "logical bytes", col("logicalBytes")),
            format!("{:20}: {}", "conventional bytes", col("conventionalBytes")),
            format!("{:20}: {:.6}x", "dedup factor", self.dedup_factor()),
        ]
    }

    /// Layers holding no regular files, via predicate pushdown on the
    /// `files` count column.
    pub fn empty_layers(&self) -> usize {
        self.layers
            .scan(&[Predicate::U64Eq("files".to_string(), 0)])
            .map(|rows| rows.len())
            .unwrap_or(0)
    }

    /// Top `n` file types by count: `(kind label, files, bytes)`, count
    /// descending, label ascending on ties.
    pub fn top_file_types(&self, n: usize) -> Vec<(String, u64, u64)> {
        let kinds = self.files.col_str("kind").expect("files table has kind column");
        let sizes = self.files.col_u64("size").expect("files table has size column");
        let mut agg: std::collections::BTreeMap<&str, (u64, u64)> = std::collections::BTreeMap::new();
        for (k, s) in kinds.iter().zip(sizes) {
            let e = agg.entry(k).or_insert((0, 0));
            e.0 += 1;
            e.1 += s;
        }
        let mut rows: Vec<(String, u64, u64)> =
            agg.into_iter().map(|(k, (c, b))| (k.to_string(), c, b)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Total file bytes in one type group (e.g. "EOL"), via predicate
    /// pushdown on the string column.
    pub fn group_bytes(&self, group: &str) -> u64 {
        let Ok(rows) = self.files.scan(&[Predicate::StrEq("group".to_string(), group.to_string())])
        else {
            return 0;
        };
        let sizes = self.files.col_u64("size").expect("files table has size column");
        rows.iter().map(|&i| sizes[i]).sum()
    }

    /// Compressed-layer-size percentiles (nearest-rank) for
    /// `dhub query layer-percentiles`.
    pub fn layer_size_percentiles(&self) -> Vec<(&'static str, u64)> {
        let mut cls: Vec<u64> =
            self.layers.col_u64("cls").expect("layers table has cls column").to_vec();
        cls.sort_unstable();
        let pick = |p: f64| -> u64 {
            if cls.is_empty() {
                return 0;
            }
            let rank = ((p / 100.0) * cls.len() as f64).ceil() as usize;
            cls[rank.clamp(1, cls.len()) - 1]
        };
        vec![
            ("p10", pick(10.0)),
            ("p25", pick(25.0)),
            ("p50", pick(50.0)),
            ("p75", pick(75.0)),
            ("p90", pick(90.0)),
            ("p99", pick(99.0)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_study_store;
    use dhub_faults::RetryPolicy;
    use dhub_synth::{generate_hub, SynthConfig};

    fn built() -> StudyDb {
        let hub = generate_hub(&SynthConfig::tiny(31).with_repos(30));
        let store = dhub_dedupstore::DedupStore::new();
        let data = run_study_store(&hub, 2, &RetryPolicy::default(), &store);
        StudyDb::build(&data, &store.stats())
    }

    #[test]
    fn build_is_deterministic_and_roundtrips() {
        let a = built();
        let b = built();
        for (ta, tb) in [
            (&a.layers, &b.layers),
            (&a.files, &b.files),
            (&a.images, &b.images),
            (&a.dedup, &b.dedup),
            (&a.study, &b.study),
        ] {
            assert_eq!(ta.to_bytes(), tb.to_bytes(), "tables must serialize identically");
        }

        let dir = std::env::temp_dir().join(format!("dhub-studydb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        a.save(&dir, &Publisher::new()).unwrap();
        let loaded = StudyDb::load(&dir).unwrap();
        assert_eq!(loaded.layers.to_bytes(), a.layers.to_bytes());
        assert_eq!(loaded.files.to_bytes(), a.files.to_bytes());
        assert_eq!(loaded.summary(), a.summary(), "query answers must survive reload");
        assert_eq!(loaded.dedup_factor().to_bits(), a.dedup_factor().to_bits());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn queries_agree_with_source_data() {
        let hub = generate_hub(&SynthConfig::tiny(37).with_repos(30));
        let store = dhub_dedupstore::DedupStore::new();
        let data = run_study_store(&hub, 2, &RetryPolicy::default(), &store);
        let db = StudyDb::build(&data, &store.stats());

        assert_eq!(db.dedup_factor().to_bits(), store.stats().dedup_factor().to_bits());
        assert_eq!(db.layers.len(), data.layers.len());
        let total_files: u64 = data.layer_slice().iter().map(|l| l.file_count).sum();
        assert_eq!(db.files.len() as u64, total_files);
        assert_eq!(db.images.len(), data.images.len());

        let empty = data.layer_slice().iter().filter(|l| l.is_empty()).count();
        assert_eq!(db.empty_layers(), empty);

        let top = db.top_file_types(5);
        assert!(!top.is_empty());
        let counted: u64 = db.top_file_types(usize::MAX).iter().map(|(_, c, _)| c).sum();
        assert_eq!(counted, total_files, "type census must cover every file");

        let pcts = db.layer_size_percentiles();
        assert_eq!(pcts.len(), 6);
        assert!(pcts.windows(2).all(|w| w[0].1 <= w[1].1), "percentiles must be monotone");
    }

    #[test]
    fn group_bytes_pushdown_matches_full_scan() {
        let db = built();
        let groups = db.files.col_str("group").unwrap().to_vec();
        let sizes = db.files.col_u64("size").unwrap().to_vec();
        for g in ["EOL", "Scr.", "Doc."] {
            let want: u64 =
                groups.iter().zip(&sizes).filter(|(k, _)| k.as_str() == g).map(|(_, s)| *s).sum();
            assert_eq!(db.group_bytes(g), want, "pushdown diverged for group {g}");
        }
    }
}
