//! Carving analysis over pipeline results (extension figure C1).
//!
//! Runs the perfect-layer carving of `dhub-carve` against the measured
//! image population and sweeps the fold threshold, exposing the trade-off
//! the paper's layer-count analysis (Fig. 10) and dedup analysis (§V)
//! jointly imply: fewer bytes stored versus more layers per image.

use crate::pipeline::StudyData;
use crate::report::{Anchor, FigureReport};
use dhub_carve::{carve, CarveConfig};
use dhub_model::Digest;

/// Extension figure C1 — storage vs layer-count trade-off of carving.
pub fn ext_c1(data: &StudyData) -> FigureReport {
    let images: Vec<Vec<Digest>> = data.image_layers.iter().map(|i| i.layers.clone()).collect();

    let mut rows = Vec::new();
    let mut perfect_saving = 0.0;
    let mut perfect_layers = 0.0;
    let original_layers = data
        .images
        .iter()
        .map(|i| i.layer_count() as f64)
        .sum::<f64>()
        / data.images.len().max(1) as f64;

    for (label, threshold) in [
        ("perfect", 0u64),
        ("fold <4KB", 4 << 10),
        ("fold <64KB", 64 << 10),
        ("fold <1MB", 1 << 20),
    ] {
        let c = carve(&images, &data.layers, &CarveConfig { min_group_bytes: threshold });
        rows.push(format!(
            "{label:<10} carved layers {:>7}  stored {:>13} B  saving {:>5.2}x  mean layers/image {:>7.1}  duplicated {:>12} B",
            c.groups.len(),
            c.stored_bytes,
            c.saving_factor(),
            c.mean_layers_per_image(),
            c.duplicated_bytes()
        ));
        if threshold == 0 {
            perfect_saving = c.saving_factor();
            perfect_layers = c.mean_layers_per_image();
        }
    }
    rows.push(format!("original mean layers/image: {original_layers:.1}"));

    FigureReport {
        id: "Ext. C1",
        title: "perfect-layer carving: storage vs layer count".into(),
        rows,
        anchors: vec![
            // Perfect carving must reach the file-dedup capacity bound the
            // paper reports (our Table 2 capacity ratio at this scale).
            Anchor::new("carving saving vs capacity-dedup bound", 1.0, {
                let c = carve(&images, &data.layers, &CarveConfig::default());
                if c.perfect_bytes == 0 { 1.0 } else { c.stored_bytes as f64 / c.perfect_bytes as f64 }
            }),
            Anchor::new(
                "perfect-carving layers/image vs original (>1)",
                10.0,
                if original_layers > 0.0 { perfect_layers / original_layers } else { 0.0 },
            ),
            Anchor::new("perfect carving saving factor", 5.0, perfect_saving),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_study;
    use dhub_synth::{generate_hub, SynthConfig};

    #[test]
    fn carving_on_pipeline_output() {
        let hub = generate_hub(&SynthConfig::tiny(51).with_repos(40));
        let data = run_study(&hub, 2);
        let f = ext_c1(&data);
        assert!(f.render().contains("Ext. C1"));
        // Perfect carving stores exactly the dedup bound.
        let bound = f.anchors.iter().find(|a| a.name.contains("bound")).unwrap();
        assert!((bound.measured - 1.0).abs() < 1e-9, "bound ratio {}", bound.measured);
        // Carving saves storage but costs layers/image.
        let saving = f.anchors.iter().find(|a| a.name.contains("saving factor")).unwrap();
        assert!(saving.measured > 1.0, "saving {}", saving.measured);
        let cost = f.anchors.iter().find(|a| a.name.contains("layers/image vs")).unwrap();
        assert!(cost.measured > 1.0, "carving should multiply layer counts: {}", cost.measured);
    }
}
