//! Figure/table report types and rendering.

/// One paper-vs-measured comparison point.
#[derive(Clone, Debug)]
pub struct Anchor {
    /// What is being compared (e.g. "median CLS (bytes)").
    pub name: String,
    /// The paper's reported value.
    pub paper: f64,
    /// What this reproduction measured (rescaled to paper units where the
    /// quantity is size-valued).
    pub measured: f64,
}

impl Anchor {
    /// Builds an anchor.
    pub fn new(name: impl Into<String>, paper: f64, measured: f64) -> Anchor {
        Anchor { name: name.into(), paper, measured }
    }

    /// measured / paper (NaN-safe).
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured / self.paper
        }
    }
}

/// A regenerated figure or table: the data rows the paper plots plus the
/// anchor comparisons.
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// Paper artifact id, e.g. "Fig. 3".
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// The series rows (pre-formatted, one per line).
    pub rows: Vec<String>,
    /// Anchor comparisons.
    pub anchors: Vec<Anchor>,
}

impl FigureReport {
    /// Renders the report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for r in &self.rows {
            out.push_str("  ");
            out.push_str(r);
            out.push('\n');
        }
        if !self.anchors.is_empty() {
            out.push_str("  anchors (paper vs measured):\n");
            for a in &self.anchors {
                out.push_str(&format!(
                    "    {:<44} paper {:>14.4}  measured {:>14.4}  ratio {:>7.3}\n",
                    a.name,
                    a.paper,
                    a.measured,
                    a.ratio()
                ));
            }
        }
        out
    }
}

/// Renders a CDF as `value p` rows at the given quantiles.
pub fn cdf_rows(ecdf: &dhub_stats::Ecdf, label: &str) -> Vec<String> {
    if ecdf.is_empty() {
        return vec![format!("{label}: (no samples)")];
    }
    [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
        .iter()
        .map(|&p| format!("{label} p{:<4} = {:.2}", (p * 100.0) as u32, ecdf.quantile(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_ratio() {
        assert!((Anchor::new("x", 10.0, 12.0).ratio() - 1.2).abs() < 1e-9);
        assert_eq!(Anchor::new("x", 0.0, 0.0).ratio(), 1.0);
        assert!(Anchor::new("x", 0.0, 5.0).ratio().is_infinite());
    }

    #[test]
    fn render_contains_everything() {
        let r = FigureReport {
            id: "Fig. 0",
            title: "demo".into(),
            rows: vec!["row-a".into()],
            anchors: vec![Anchor::new("median", 4.0, 4.4)],
        };
        let text = r.render();
        assert!(text.contains("Fig. 0"));
        assert!(text.contains("row-a"));
        assert!(text.contains("median"));
        assert!(text.contains("1.100"));
    }

    #[test]
    fn cdf_rows_shape() {
        let e = dhub_stats::Ecdf::from_u64(1..=100);
        let rows = cdf_rows(&e, "files");
        assert_eq!(rows.len(), 8);
        assert!(rows[2].contains("p50"));
        let empty = dhub_stats::Ecdf::new(vec![]);
        assert_eq!(cdf_rows(&empty, "x").len(), 1);
    }
}
