//! From-scratch hashing primitives used across the Docker Hub study.
//!
//! Docker content-addresses every blob (layer tarballs, manifests) with
//! SHA-256, gzip frames carry a CRC-32, and the deduplication analysis needs
//! a fast non-cryptographic hash for its in-memory multimaps. All three live
//! here with no external dependencies:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (incremental and one-shot),
//! * [`crc32`] — the IEEE 802.3 CRC-32 used by gzip,
//! * [`fxhash`] — an FxHash-style mixer plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases for hot hash tables, per the Rust perf-book guidance.

pub mod crc32;
pub mod fxhash;
pub mod sha256;

pub use crc32::{crc32, Crc32};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use sha256::{sha256, sha256_hex, Sha256};
