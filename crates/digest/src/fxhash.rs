//! FxHash-style fast non-cryptographic hashing.
//!
//! The dedup analysis keeps hundreds of thousands of digests in hash maps on
//! the hot path; SipHash (std's default) is measurably slower there. This is
//! the rustc `FxHasher` algorithm: fold each word into the state with a
//! rotate, xor, and multiply by a fixed odd constant. Not DoS-resistant —
//! fine here, keys are content digests, not attacker-controlled strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (64-bit golden-ratio-derived, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher state.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a byte slice in one shot.
pub fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fxhash(b"hello"), fxhash(b"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fxhash(b"hello"), fxhash(b"hellp"));
        assert_ne!(fxhash(b""), fxhash(b"\0"));
        assert_ne!(fxhash(b"ab"), fxhash(b"ab\0"));
    }

    #[test]
    fn length_extension_differs() {
        // Trailing zero bytes must not collide with the shorter prefix.
        assert_ne!(fxhash(b"12345678"), fxhash(b"12345678\0"));
        assert_ne!(fxhash(b"1234567"), fxhash(b"12345670"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m["a"], 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn spread_over_buckets() {
        // Sanity: hashing sequential integers should not collapse into a few
        // values (guards against a broken mixer).
        let mut seen = FxHashSet::default();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
