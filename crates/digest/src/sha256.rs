//! SHA-256 per FIPS 180-4, tuned for the layer-analysis hot path.
//!
//! Implemented directly from the specification: 512-bit blocks, 64-round
//! compression over eight 32-bit words of state. The round loop is
//! macro-unrolled with rotated register naming (no per-round state
//! shuffle), full blocks compress straight from the input slice without
//! staging through the 64-byte buffer, and `finalize` writes the padding
//! blocks directly instead of feeding padding through `update` a byte at a
//! time. The implementation is incremental ([`Sha256::update`]) so large
//! layer tarballs can be hashed while streaming, and one-shot helpers
//! ([`sha256`], [`sha256_hex`]) cover the common case of digesting an
//! in-memory blob.

/// Per-round constants: the first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use dhub_digest::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (used for the length suffix in padding).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 { state: H0, len: 0, buf: [0; 64], buf_len: 0 }
    }

    /// Absorbs `data` into the hash state. Whole blocks compress straight
    /// from `data`; only a trailing partial block is staged in `buf`.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                compress(&mut self.state, &self.buf);
                self.buf_len = 0;
            } else {
                // Input fit entirely into the partial buffer; the chunk
                // loop below must not clobber buf_len.
                return;
            }
        }
        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            compress(&mut self.state, block.try_into().unwrap());
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the 64-bit big-endian bit
        // length — written directly into the final one or two blocks.
        let n = self.buf_len;
        self.buf[n] = 0x80;
        if n < 56 {
            self.buf[n + 1..56].fill(0);
            self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
            compress(&mut self.state, &self.buf);
        } else {
            self.buf[n + 1..64].fill(0);
            compress(&mut self.state, &self.buf);
            let mut last = [0u8; 64];
            last[56..64].copy_from_slice(&bit_len.to_be_bytes());
            compress(&mut self.state, &last);
        }
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Finishes the hash and returns the digest as lowercase hex.
    pub fn finalize_hex(self) -> String {
        to_hex(&self.finalize())
    }
}

/// One round: `t1`/`t2` from the working registers, writing `d` and `h` in
/// place. Callers rotate the argument order instead of shuffling eight
/// registers per round, which is what lets the 64 rounds unroll flat.
macro_rules! round {
    ($a:ident,$b:ident,$c:ident,$d:ident,$e:ident,$f:ident,$g:ident,$h:ident, $k:expr, $w:expr) => {{
        let t1 = $h
            .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
            .wrapping_add(($e & $f) ^ (!$e & $g))
            .wrapping_add($k)
            .wrapping_add($w);
        let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
            .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
        $d = $d.wrapping_add(t1);
        $h = t1.wrapping_add(t2);
    }};
}

/// Compresses one 512-bit block into `state`. A free function (not a
/// method) so `update` can compress `self.buf` without a borrow-splitting
/// copy of the block.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    let mut i = 0;
    while i < 64 {
        round!(a, b, c, d, e, f, g, h, K[i], w[i]);
        round!(h, a, b, c, d, e, f, g, K[i + 1], w[i + 1]);
        round!(g, h, a, b, c, d, e, f, K[i + 2], w[i + 2]);
        round!(f, g, h, a, b, c, d, e, K[i + 3], w[i + 3]);
        round!(e, f, g, h, a, b, c, d, K[i + 4], w[i + 4]);
        round!(d, e, f, g, h, a, b, c, K[i + 5], w[i + 5]);
        round!(c, d, e, f, g, h, a, b, K[i + 6], w[i + 6]);
        round!(b, c, d, e, f, g, h, a, K[i + 7], w[i + 7]);
        i += 8;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 of `data` as lowercase hex (the form Docker digests use).
pub fn sha256_hex(data: &[u8]) -> String {
    to_hex(&sha256(data))
}

/// Lowercase hex encoding of a byte slice.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / FIPS 180-4 reference vectors.
    #[test]
    fn empty_input() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exact_block_boundary() {
        // 64-byte input exercises the padding path where a whole extra block
        // is required.
        let data = [0u8; 64];
        assert_eq!(
            sha256_hex(&data),
            "f5a5fd42d16a20302798ef6ed309979b43003d2320d9f0e8ea9831a92759fb4b"
        );
    }

    #[test]
    fn length_55_56_57_padding_edges() {
        // 55 bytes: padding fits in one block; 56/57: spills into a second.
        for (n, want) in [
            (55usize, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"),
            (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"),
            (57, "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6"),
        ] {
            assert_eq!(sha256_hex(&vec![b'a'; n]), want, "length {n}");
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        // Feed in awkward chunk sizes.
        for chunk in [1usize, 3, 63, 64, 65, 1000] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn hex_encoding() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(to_hex(&[]), "");
    }

    #[test]
    fn clone_preserves_state() {
        let mut h = Sha256::new();
        h.update(b"abc");
        let h2 = h.clone();
        assert_eq!(h.finalize(), h2.finalize());
    }
}
