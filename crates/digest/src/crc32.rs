//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) as used by gzip.
//!
//! The gzip trailer carries a CRC-32 of the uncompressed payload; the
//! from-scratch gzip implementation in `dhub-compress` both emits and checks
//! it through this module. Uses the classic 8-entries-per-byte table lookup,
//! with the table built in a `const fn` so there is no runtime init.

/// Lookup table for one byte of input, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Incremental CRC-32 state.
///
/// ```
/// use dhub_digest::Crc32;
/// let mut c = Crc32::new();
/// c.update(b"123456789");
/// assert_eq!(c.finalize(), 0xCBF43926);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Crc32 {
    /// Internal state is the ones-complement of the running CRC.
    state: u32,
}

impl Crc32 {
    /// Creates a fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0 }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = !self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
        self.state = !c;
    }

    /// Returns the CRC over everything absorbed so far.
    pub fn finalize(self) -> u32 {
        self.state
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_strings() {
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
        assert_eq!(crc32(b"abc"), 0x352441C2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414FA339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(17) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn resumable_after_finalize_copy() {
        // finalize takes self by value but Crc32 is Copy, so a snapshot works.
        let mut c = Crc32::new();
        c.update(b"1234");
        let mid = c;
        c.update(b"56789");
        assert_eq!(c.finalize(), 0xCBF43926);
        assert_ne!(mid.finalize(), 0xCBF43926);
    }
}
