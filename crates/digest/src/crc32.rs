//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) as used by gzip.
//!
//! The gzip trailer carries a CRC-32 of the uncompressed payload; the
//! from-scratch gzip implementation in `dhub-compress` both emits and checks
//! it through this module. The kernel is slice-by-8: eight compile-time
//! tables let each iteration fold in 8 input bytes with 8 independent
//! lookups instead of a serial per-byte chain, which is what keeps the
//! trailer check a rounding error next to inflate on the layer hot path.

/// `TABLES[0]` is the classic per-byte table; `TABLES[k]` advances a byte
/// `k` positions further through the shift register, so one lookup per
/// table processes 8 bytes at once. All built at compile time.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xff) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

/// Incremental CRC-32 state.
///
/// ```
/// use dhub_digest::Crc32;
/// let mut c = Crc32::new();
/// c.update(b"123456789");
/// assert_eq!(c.finalize(), 0xCBF43926);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Crc32 {
    /// Internal state is the ones-complement of the running CRC.
    state: u32,
}

impl Crc32 {
    /// Creates a fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0 }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = !self.state;
        let mut chunks = data.chunks_exact(8);
        for ch in &mut chunks {
            let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
            let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
            c = TABLES[7][(lo & 0xff) as usize]
                ^ TABLES[6][((lo >> 8) & 0xff) as usize]
                ^ TABLES[5][((lo >> 16) & 0xff) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xff) as usize]
                ^ TABLES[2][((hi >> 8) & 0xff) as usize]
                ^ TABLES[1][((hi >> 16) & 0xff) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = TABLES[0][((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
        self.state = !c;
    }

    /// Returns the CRC over everything absorbed so far.
    pub fn finalize(self) -> u32 {
        self.state
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_strings() {
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
        assert_eq!(crc32(b"abc"), 0x352441C2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414FA339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(17) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn resumable_after_finalize_copy() {
        // finalize takes self by value but Crc32 is Copy, so a snapshot works.
        let mut c = Crc32::new();
        c.update(b"1234");
        let mid = c;
        c.update(b"56789");
        assert_eq!(c.finalize(), 0xCBF43926);
        assert_ne!(mid.finalize(), 0xCBF43926);
    }

    #[test]
    fn slice_by_8_matches_bytewise_reference() {
        // Every length 0..64 at every alignment the slice-by-8 kernel can
        // see (leading remainder handled by update-in-chunks above; here we
        // sweep lengths so tails of 0..=7 bytes are all hit).
        let data: Vec<u8> = (0..64u32).map(|i| (i * 131 + 17) as u8).collect();
        for len in 0..=data.len() {
            let mut c = 0xFFFF_FFFFu32;
            for &b in &data[..len] {
                c = TABLES[0][((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
            }
            assert_eq!(crc32(&data[..len]), !c, "len {len}");
        }
    }
}
