//! Property tests for the hashing primitives.

#![cfg(feature = "proptest")]

use dhub_digest::{crc32, sha256, Crc32, Sha256};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing over arbitrary chunkings equals one-shot hashing.
    #[test]
    fn sha256_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                 cuts in proptest::collection::vec(0usize..4096, 0..8)) {
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        bounds.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for b in bounds {
            h.update(&data[prev..b]);
            prev = b;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// CRC over arbitrary split equals one-shot CRC.
    #[test]
    fn crc32_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                cut in 0usize..4096) {
        let cut = cut % (data.len() + 1);
        let mut c = Crc32::new();
        c.update(&data[..cut]);
        c.update(&data[cut..]);
        prop_assert_eq!(c.finalize(), crc32(&data));
    }

    /// Different inputs yield different SHA-256 digests (collision would be
    /// astronomically unlikely; a hit means the implementation is broken).
    #[test]
    fn sha256_injective_in_practice(a in proptest::collection::vec(any::<u8>(), 0..256),
                                    b in proptest::collection::vec(any::<u8>(), 0..256)) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }
}
