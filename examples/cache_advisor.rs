//! Cache advisor: evaluates the paper's caching suggestion.
//!
//! §IV-B observes that pulls are heavily skewed (median 40, max 650 M) and
//! concludes "Docker Hub is a good fit for caching popular repositories".
//! This tool replays a pull trace sampled from the *measured* popularity
//! distribution against byte-budgeted caches (LRU / LFU / FIFO / GDSF from
//! `dhub-cache`) and reports request and egress hit ratios per policy and
//! cache size — the analysis an operator runs before sizing a cache tier.
//!
//! ```sh
//! cargo run --release --example cache_advisor [repos] [seed]
//! ```

use dhub_cache::{simulate, CachePolicy, Fifo, GreedyDualSizeFrequency, Lfu, Lru, PullTrace, TraceConfig};
use dhub_study::run_study;
use dhub_synth::{generate_hub, SynthConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let repos: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(9);

    let cfg = SynthConfig::default_scale(seed).with_repos(repos);
    let hub = generate_hub(&cfg);
    let data = run_study(&hub, dhub_par::default_threads());

    // Object population: one object per downloadable image, weighted by its
    // measured cumulative pulls, sized by its compressed image size.
    let objects: Vec<(u64, f64, u64)> = data
        .images
        .iter()
        .enumerate()
        .map(|(i, img)| {
            let pulls = data
                .pulls
                .iter()
                .find(|(r, _)| r == &img.repo)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            (i as u64, (pulls + 1) as f64, img.cis.max(1))
        })
        .collect();
    let total_bytes: u64 = objects.iter().map(|&(_, _, s)| s).sum();

    let trace = PullTrace::from_popularity(&objects, &TraceConfig { seed: seed ^ 0xCACE, requests: 150_000 });
    println!(
        "=== Cache sizing: {} images, catalog {:.1} MB (scaled), {} simulated pulls ===\n",
        objects.len(),
        total_bytes as f64 / 1e6,
        trace.requests.len()
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10}  (request hit % / egress saved %)",
        "cache bytes", "LRU", "LFU", "FIFO", "GDSF"
    );

    for frac in [0.01, 0.02, 0.05, 0.10, 0.25] {
        let cap = ((total_bytes as f64 * frac) as u64).max(1);
        let row: Vec<String> = [
            run(&trace, Lru::new(cap)),
            run(&trace, Lfu::new(cap)),
            run(&trace, Fifo::new(cap)),
            run(&trace, GreedyDualSizeFrequency::new(cap)),
        ]
        .into_iter()
        .map(|(h, b)| format!("{:>4.1}/{:<4.1}", h * 100.0, b * 100.0))
        .collect();
        println!(
            "{:>11.1} MB {:>10} {:>10} {:>10} {:>10}   ({:.0} % of catalog)",
            cap as f64 / 1e6,
            row[0],
            row[1],
            row[2],
            row[3],
            frac * 100.0
        );
    }

    println!();
    println!(
        "The skew the paper measured (Fig. 8) means a cache holding a few percent of \
catalog bytes absorbs the large majority of pulls; frequency-aware policies (LFU/GDSF) \
edge out LRU because the popularity ranking is stable."
    );
}

fn run(trace: &PullTrace, mut cache: impl CachePolicy) -> (f64, f64) {
    let stats = simulate(&mut cache, trace);
    (stats.hit_ratio(), stats.byte_hit_ratio())
}
