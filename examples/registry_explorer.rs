//! Registry explorer: pulls one image the way the paper's downloader does
//! and dissects it — manifest JSON, per-layer stats, and the file-type
//! breakdown of its largest layer.
//!
//! ```sh
//! cargo run --release --example registry_explorer [repo] [repos] [seed]
//! ```

use dhub_analyzer::analyze_layer;
use dhub_model::RepoName;
use dhub_synth::{generate_hub, SynthConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let repo_arg = args.next().unwrap_or_else(|| "nginx".to_string());
    let repos: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let cfg = SynthConfig::default_scale(seed).with_repos(repos);
    let hub = generate_hub(&cfg);
    let repo = RepoName::parse(&repo_arg).expect("repo name like 'nginx' or 'user/app'");

    println!("$ docker pull {repo}:latest   (via direct registry API)\n");
    let sess = match hub.registry.get_manifest(&repo, "latest", false) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pull failed: {e}");
            eprintln!("(try one of: nginx, redis, ubuntu, google/cadvisor, or user*/app-*)");
            std::process::exit(1);
        }
    };

    println!("manifest digest: {}", sess.manifest_digest);
    println!("manifest JSON:\n{}\n", sess.manifest.to_json());
    println!("pull count: {}", hub.registry.pull_count(&repo).unwrap_or(0));
    println!();

    println!(
        "{:<20} {:>12} {:>12} {:>8} {:>6} {:>7} {:>6}",
        "layer", "CLS(B)", "FLS(B)", "ratio", "files", "dirs", "depth"
    );
    let mut largest: Option<dhub_model::LayerProfile> = None;
    for l in &sess.manifest.layers {
        let blob = hub.registry.get_blob(&l.digest).expect("manifest refs exist");
        let p = analyze_layer(l.digest, &blob).expect("layer decodes");
        println!(
            "{:<20} {:>12} {:>12} {:>8.2} {:>6} {:>7} {:>6}",
            format!("{:?}", l.digest),
            p.cls,
            p.fls,
            p.compression_ratio(),
            p.file_count,
            p.dir_count,
            p.max_depth
        );
        if largest.as_ref().map(|b| p.file_count > b.file_count).unwrap_or(true) {
            largest = Some(p);
        }
    }

    if let Some(big) = largest {
        if big.file_count > 0 {
            println!("\nfile types in the largest layer ({} files):", big.file_count);
            let mut by_kind: std::collections::BTreeMap<&'static str, (u64, u64)> =
                std::collections::BTreeMap::new();
            for f in &big.files {
                let e = by_kind.entry(f.kind.label()).or_insert((0, 0));
                e.0 += 1;
                e.1 += f.size;
            }
            let mut rows: Vec<_> = by_kind.into_iter().collect();
            rows.sort_by_key(|(_, (_, b))| std::cmp::Reverse(*b));
            for (label, (count, bytes)) in rows.into_iter().take(12) {
                println!("  {label:<18} {count:>6} files {bytes:>12} B");
            }
            println!("\nsample paths:");
            for f in big.files.iter().take(8) {
                println!("  /{} ({} B, {})", f.path, f.size, f.kind.label());
            }
        }
    }
}
