//! Dedup planner: what a registry operator would run before deploying
//! file-level deduplication.
//!
//! The paper's motivation (§V): layer sharing already saves ~1.8x, but
//! only 3 % of files are unique, so file-level dedup could save much more.
//! This tool quantifies both on a concrete registry and breaks the
//! remaining opportunity down by file type so the operator knows where the
//! bytes are.
//!
//! ```sh
//! cargo run --release --example dedup_planner [repos] [seed]
//! ```

use dhub_dedup::{dedup_by_group, file_dedup, layer_sharing};
use dhub_dedupstore::DedupStore;
use dhub_model::TypeGroup;
use dhub_study::run_study;
use dhub_synth::{generate_hub, SynthConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let repos: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let cfg = SynthConfig::default_scale(seed).with_repos(repos);
    let hub = generate_hub(&cfg);
    let data = run_study(&hub, dhub_par::default_threads());
    let layers = data.layer_slice();
    let threads = dhub_par::default_threads();

    println!("=== Dedup planning report ({} unique layers) ===\n", layers.len());

    // Tier 1: what content-addressed layer sharing already gives us.
    let sizes = data.layer_sizes();
    let sharing = layer_sharing(&data.image_layers, &sizes);
    println!("Tier 1 — layer sharing (already deployed in every registry):");
    println!("  bytes if every image stored its own layers : {:>14}", sharing.unshared_bytes);
    println!("  bytes actually stored                      : {:>14}", sharing.stored_bytes);
    println!("  savings factor                             : {:>10.2}x\n", sharing.sharing_factor());

    // Tier 2: what file-level dedup would add.
    let stats = file_dedup(&layers, threads);
    println!("Tier 2 — file-level dedup (proposed):");
    println!("  file instances                             : {:>14}", stats.total_instances);
    println!("  unique files                               : {:>14}", stats.unique_files);
    println!("  logical bytes                              : {:>14}", stats.total_bytes);
    println!("  bytes after file dedup                     : {:>14}", stats.unique_bytes);
    println!("  count dedup ratio                          : {:>10.2}x", stats.count_ratio());
    println!("  capacity dedup ratio                       : {:>10.2}x\n", stats.capacity_ratio());

    // Tier 3: run the prototype dedup store over the actual blobs and show
    // the realized numbers (not just the analysis projection).
    let store = DedupStore::new();
    let mut ingest_errors = 0usize;
    for (digest, profile) in data.layers.iter() {
        let blob = hub.registry.get_blob(digest).expect("downloaded layers exist");
        match store.ingest_layer(*digest, &blob) {
            Ok(_) => {}
            Err(_) => ingest_errors += 1,
        }
        let _ = profile;
    }
    let st = store.stats();
    println!("Tier 3 — prototype file-level store (realized, not projected):");
    println!("  layers ingested                            : {:>14}", st.layers);
    println!("  unique file objects                        : {:>14}", st.unique_objects);
    println!("  logical bytes                              : {:>14}", st.logical_bytes);
    println!("  physical bytes after dedup                 : {:>14}", st.physical_bytes);
    println!("  realized dedup factor                      : {:>10.2}x", st.dedup_factor());
    println!("  ingest errors                              : {:>14}\n", ingest_errors);

    // Where the reclaimable bytes live.
    println!("Reclaimable capacity by type group:");
    let mut rows = dedup_by_group(&layers, threads);
    rows.sort_by_key(|(_, r)| std::cmp::Reverse(r.bytes - r.unique_bytes));
    for (g, r) in &rows {
        let reclaim = r.bytes - r.unique_bytes;
        println!(
            "  {:<6} reclaim {:>13} B  ({:>5.1} % of the group's bytes)",
            g.label(),
            reclaim,
            r.capacity_redundancy() * 100.0
        );
    }

    let (best_group, _) = rows[0];
    println!();
    println!(
        "Recommendation: file-level dedup on top of layer sharing reduces stored file bytes {:.1}x; \
the biggest single win is the {} group.",
        stats.capacity_ratio(),
        label_long(best_group)
    );
}

fn label_long(g: TypeGroup) -> &'static str {
    match g {
        TypeGroup::Eol => "executables/object-code/libraries",
        TypeGroup::SourceCode => "source code",
        TypeGroup::Scripts => "scripts",
        TypeGroup::Documents => "documents",
        TypeGroup::Archival => "archives",
        TypeGroup::ImageData => "image data",
        TypeGroup::Database => "databases",
        TypeGroup::Other => "other files",
    }
}
