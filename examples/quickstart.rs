//! Quickstart: generate a synthetic Docker Hub, run the full measurement
//! pipeline, and print the headline results.
//!
//! ```sh
//! cargo run --release --example quickstart [repos] [seed]
//! ```

use dhub_study::figures;
use dhub_study::run_study;
use dhub_synth::{generate_hub, SynthConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let repos: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    println!("Generating a synthetic Docker Hub ({repos} repositories, seed {seed})...");
    let cfg = SynthConfig::default_scale(seed).with_repos(repos);
    let t0 = std::time::Instant::now();
    let hub = generate_hub(&cfg);
    let stats = hub.registry.stats();
    println!(
        "  generated in {:.1?}: {} repos, {} unique blobs, {:.1} MB stored (scale 1/{})",
        t0.elapsed(),
        stats.repositories,
        stats.unique_blobs,
        stats.stored_bytes as f64 / 1e6,
        cfg.size_scale,
    );

    println!("Running crawl -> download -> analyze -> dedup...");
    let t1 = std::time::Instant::now();
    let data = run_study(&hub, dhub_par::default_threads());
    println!("  pipeline finished in {:.1?}", t1.elapsed());

    println!();
    println!("{}", figures::table1(&data).render());
    println!("{}", figures::fig04(&data).render());
    println!("{}", figures::fig23(&data).render());
    println!("{}", figures::table2(&data).render());
    println!("Full set: `cargo run --release -p dhub-study --bin report` or `dhub report` (Figs. 3-29 + extensions).");
}
