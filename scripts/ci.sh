#!/usr/bin/env bash
# Offline CI gate for the workspace.
#
# The environment this runs in has no network and no cargo registry cache,
# so everything must resolve from path dependencies alone. This script is
# the contract: release build + default tests offline, the feature-gated
# property suites per crate, and an audit that no external (registry)
# dependency sneaks back into any manifest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (default features)"
cargo test -q --offline

# Property tests are behind each crate's optional `proptest` feature; the
# workspace root is virtual, so enable the feature per package.
PROP_CRATES=(cache carve compress dedupstore digest json magic model registry stats tar)
for c in "${PROP_CRATES[@]}"; do
    echo "==> prop tests: dhub-$c"
    cargo test -q --offline -p "dhub-$c" --features proptest --test props
done

# dhub-faults carries proptest as a regular dependency (its fault stream IS
# a seeded RNG), so its property suite needs no feature flag.
echo "==> prop tests: dhub-faults"
cargo test -q --offline -p dhub-faults --test props

# Replayability is part of the contract: one property suite re-run under a
# pinned PROPTEST_SEED must pass identically.
echo "==> prop test replay: dhub-faults under pinned PROPTEST_SEED"
PROPTEST_SEED=0x00000000002a2a2a \
    cargo test -q --offline -p dhub-faults --test props

# The chaos suite: full crawl→download pipeline under deterministic fault
# injection, asserting byte-identical datasets with retries on.
echo "==> chaos suite: tests/chaos.rs"
cargo test -q --offline -p dhub-study --test chaos

echo "==> dependency audit"
# No references to the removed external crates anywhere in crate sources.
if grep -rn "crossbeam\|parking_lot" crates/*/src; then
    echo "FAIL: external concurrency crate reference in crate sources" >&2
    exit 1
fi
# Every dependency in every manifest must be a path dependency (declared
# directly or inherited from the [workspace.dependencies] table, whose
# entries are all `{ path = ... }`).
python3 - <<'EOF'
import glob
import re
import sys

root = open("Cargo.toml").read()
ws = re.search(r"\[workspace\.dependencies\](.*?)(\n\[|\Z)", root, re.S).group(1)
ws_deps = {}
for line in ws.splitlines():
    m = re.match(r"([A-Za-z0-9_-]+)\s*=\s*(.*)", line.strip())
    if m:
        ws_deps[m.group(1)] = m.group(2)
bad = []
for name, spec in ws_deps.items():
    if "path" not in spec:
        bad.append(f"Cargo.toml: workspace dep `{name}` is not a path dependency: {spec}")

section_re = re.compile(r"^\[(.+)\]\s*$")
for manifest in sorted(glob.glob("crates/*/Cargo.toml")):
    section = ""
    for line in open(manifest):
        m = section_re.match(line.strip())
        if m:
            section = m.group(1)
            continue
        if not (section.endswith("dependencies")):
            continue
        m = re.match(r"([A-Za-z0-9_-]+)\s*(?:\.workspace)?\s*=\s*(.*)", line.strip())
        if not m:
            continue
        name, spec = m.groups()
        if "workspace" in line and name in ws_deps:
            continue  # inherited; audited above
        if "path" not in spec:
            bad.append(f"{manifest}: `{name}` is not a path dependency: {spec}")
if bad:
    print("FAIL: non-path dependencies found:", file=sys.stderr)
    for b in bad:
        print("  " + b, file=sys.stderr)
    sys.exit(1)
print("dependency audit: all manifests resolve from path dependencies only")
EOF

echo "==> ci.sh: all gates passed"
