#!/usr/bin/env bash
# Offline CI gate for the workspace.
#
# The environment this runs in has no network and no cargo registry cache,
# so everything must resolve from path dependencies alone. This script is
# the contract: release build + default tests offline, the feature-gated
# property suites per crate, and an audit that no external (registry)
# dependency sneaks back into any manifest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (default features)"
cargo test -q --offline

# Property tests are behind each crate's optional `proptest` feature; the
# workspace root is virtual, so enable the feature per package.
PROP_CRATES=(cache carve compress dedupstore digest json magic model persist queue registry stats tar)
for c in "${PROP_CRATES[@]}"; do
    echo "==> prop tests: dhub-$c"
    cargo test -q --offline -p "dhub-$c" --features proptest --test props
done

# dhub-faults carries proptest as a regular dependency (its fault stream IS
# a seeded RNG), so its property suite needs no feature flag.
echo "==> prop tests: dhub-faults"
cargo test -q --offline -p dhub-faults --test props

# Replayability is part of the contract: one property suite re-run under a
# pinned PROPTEST_SEED must pass identically.
echo "==> prop test replay: dhub-faults under pinned PROPTEST_SEED"
PROPTEST_SEED=0x00000000002a2a2a \
    cargo test -q --offline -p dhub-faults --test props

# The chaos suite: full crawl→download pipeline under deterministic fault
# injection, asserting byte-identical datasets with retries on. Includes
# the mirror gate: the study pulled through a dhub-mirror edge tier must
# be byte-identical to the direct run at fault rates 0 / 5 / 20 %, survive
# a killed origin shard, and reconcile every dhub_mirror_* counter against
# the report and the Prometheus exposition.
echo "==> chaos suite: tests/chaos.rs (incl. mirror tier gates)"
cargo test -q --offline -p dhub-study --test chaos

# Observability gate: a seeded faulted study writes a metrics snapshot that
# must reconcile exactly with the Table 1 counters the same run printed —
# the reports are *derived from* the counters, so any drift is a bug.
echo "==> obs gate: metrics snapshot reconciles with printed Table 1"
OBS_SNAP=$(mktemp /tmp/dhub-obs-snap.XXXXXX)
OBS_OUT=$(mktemp /tmp/dhub-obs-out.XXXXXX)
./target/release/dhub summary --repos 25 --seed 5 --scale 1024 --threads 2 \
    --fault-rate 0.1 --fault-seed 7 --max-retries 16 \
    --metrics-snapshot "$OBS_SNAP" > "$OBS_OUT"
python3 - "$OBS_SNAP" "$OBS_OUT" <<'EOF'
import json
import re
import sys

snap = json.load(open(sys.argv[1]))
out = open(sys.argv[2]).read()
assert snap["schema"] == "dhub-obs-snapshot-v1", snap.get("schema")

def table(label):
    m = re.search(re.escape(label) + r"\s*: (\d+)", out)
    assert m, f"missing Table 1 line {label!r}"
    return int(m.group(1))

checks = {
    "dhub_crawl_raw_results_total": "search results (raw)",
    "dhub_download_images_ok_total": "images downloaded",
    "dhub_download_unique_layers_total": "unique compressed layers",
    "dhub_download_layer_fetches_skipped_total": "layer fetches skipped (dedup)",
    "dhub_download_retries_total": "transient retries",
    "dhub_download_corrupt_retries_total": "- digest-verify refetches",
    "dhub_download_gave_up_total": "retry give-ups",
    "dhub_analyze_files_total": "files analyzed",
    "dhub_analyze_bytes_total": "layer bytes analyzed",
}
bad = []
for counter, label in checks.items():
    want = table(label)
    got = snap["counters"].get(counter)
    if got != want:
        bad.append(f"{counter}={got} but Table 1 {label!r}={want}")
if bad:
    print("FAIL: snapshot does not reconcile with Table 1:", file=sys.stderr)
    for b in bad:
        print("  " + b, file=sys.stderr)
    sys.exit(1)
print(f"obs gate: {len(checks)} snapshot counters reconcile with Table 1")
EOF
rm -f "$OBS_SNAP" "$OBS_OUT"

# Fused store gate: the single-pass analyze+ingest pipeline behind
# `dhub store` must reconcile its own snapshot — every layer the analyzer
# profiled is exactly one store ingest (downloads are digest-verified, so
# no analysis errors; unique layers are analyzed once), and the printed
# `layers` line is the same number again from the store's point of view.
echo "==> store gate: fused analyze+ingest counters reconcile"
STORE_SNAP=$(mktemp /tmp/dhub-store-snap.XXXXXX)
STORE_OUT=$(mktemp /tmp/dhub-store-out.XXXXXX)
./target/release/dhub store --repos 25 --seed 5 --scale 1024 --threads 2 \
    --fault-rate 0.1 --fault-seed 7 --max-retries 16 \
    --metrics-snapshot "$STORE_SNAP" > "$STORE_OUT"
python3 - "$STORE_SNAP" "$STORE_OUT" <<'EOF'
import json
import re
import sys

snap = json.load(open(sys.argv[1]))
out = open(sys.argv[2]).read()
layers = int(re.search(r"layers\s*: (\d+)", out).group(1))
c = snap["counters"]
bad = []
if c.get("dhub_store_ingests_total") != layers:
    bad.append(f"dhub_store_ingests_total={c.get('dhub_store_ingests_total')} but printed layers={layers}")
if c.get("dhub_analyze_layers_total") != layers:
    bad.append(f"dhub_analyze_layers_total={c.get('dhub_analyze_layers_total')} but printed layers={layers}")
if c.get("dhub_analyze_errors_total", 0) != 0:
    bad.append(f"dhub_analyze_errors_total={c.get('dhub_analyze_errors_total')} on digest-verified blobs")
if bad:
    print("FAIL: fused store snapshot does not reconcile:", file=sys.stderr)
    for b in bad:
        print("  " + b, file=sys.stderr)
    sys.exit(1)
print(f"store gate: {layers} layers analyzed == ingested, zero analysis errors")
EOF
rm -f "$STORE_SNAP" "$STORE_OUT"

# Persistence gate: a study ingested into an on-disk store must answer
# `dhub query` from disk alone with exactly the numbers the ingest run
# printed, a faulted ingest (write crashes + wire faults, retried) must
# leave a store whose query answers are byte-identical to the clean run's,
# and a re-run over a populated store must resume instead of re-ingesting.
echo "==> persist gate: ingest -> reopen -> query reconciles, faulted == clean"
PERSIST_CLEAN=$(mktemp -d /tmp/dhub-persist-clean.XXXXXX)
PERSIST_FAULT=$(mktemp -d /tmp/dhub-persist-fault.XXXXXX)
PERSIST_OUT=$(mktemp /tmp/dhub-persist-out.XXXXXX)
rm -rf "$PERSIST_CLEAN" "$PERSIST_FAULT"
./target/release/dhub store --repos 25 --seed 5 --scale 1024 --threads 2 \
    --store-dir "$PERSIST_CLEAN" > "$PERSIST_OUT"
./target/release/dhub query "$PERSIST_CLEAN" dedup > "$PERSIST_OUT.q"
python3 - "$PERSIST_OUT" "$PERSIST_OUT.q" <<'EOF'
import re
import sys

ingest = open(sys.argv[1]).read()
query = open(sys.argv[2]).read()
bad = []
for label in ["layers", "unique objects", "logical bytes", "physical bytes"]:
    want = int(re.search(re.escape(label) + r"\s*: (\d+)", ingest).group(1))
    m = re.search(re.escape(label) + r"\s*: (\d+)", query)
    if not m:
        bad.append(f"query missing {label!r}")
    elif int(m.group(1)) != want:
        bad.append(f"query {label}={m.group(1)} but ingest printed {want}")
if bad:
    print("FAIL: query does not reconcile with the ingest run:", file=sys.stderr)
    for b in bad:
        print("  " + b, file=sys.stderr)
    sys.exit(1)
print("persist gate: query answers reconcile with the ingest run's printed stats")
EOF
# Faulted ingest into a second store: same query answers, byte for byte.
./target/release/dhub store --repos 25 --seed 5 --scale 1024 --threads 2 \
    --fault-rate 0.2 --fault-seed 7 --max-retries 16 \
    --store-dir "$PERSIST_FAULT" > /dev/null
for q in summary dedup top-types layer-percentiles; do
    ./target/release/dhub query "$PERSIST_CLEAN" "$q" > "$PERSIST_OUT.clean"
    ./target/release/dhub query "$PERSIST_FAULT" "$q" > "$PERSIST_OUT.fault"
    cmp -s "$PERSIST_OUT.clean" "$PERSIST_OUT.fault" \
        || { echo "FAIL: query '$q' diverged between clean and faulted stores" >&2; exit 1; }
done
echo "persist gate: 4 query outputs byte-identical across clean and faulted stores"
# Resume: the same ingest again must replay, not re-ingest.
./target/release/dhub store --repos 25 --seed 5 --scale 1024 --threads 2 \
    --store-dir "$PERSIST_CLEAN" > "$PERSIST_OUT.resume"
grep -q "resuming store with" "$PERSIST_OUT.resume" \
    || { echo "FAIL: second run over a populated store did not resume" >&2; exit 1; }
echo "persist gate: populated store resumed instead of re-ingesting"
rm -rf "$PERSIST_CLEAN" "$PERSIST_FAULT" "$PERSIST_OUT" "$PERSIST_OUT.q" \
    "$PERSIST_OUT.clean" "$PERSIST_OUT.fault" "$PERSIST_OUT.resume"

# Queue gate: the lease-based worker fleet must produce byte-identical
# query answers at 1 and 4 workers, and a fleet killed mid-run by its
# --max-commits crash budget must answer queries from the half-finished
# store (durable recipe replay) and then resume to the same bytes.
echo "==> queue gate: dhub work fleet — 1 vs 4 workers, kill + resume"
QUEUE_W1=$(mktemp -d /tmp/dhub-queue-w1.XXXXXX)
QUEUE_W4=$(mktemp -d /tmp/dhub-queue-w4.XXXXXX)
QUEUE_KILL=$(mktemp -d /tmp/dhub-queue-kill.XXXXXX)
QUEUE_OUT=$(mktemp /tmp/dhub-queue-out.XXXXXX)
rm -rf "$QUEUE_W1" "$QUEUE_W4" "$QUEUE_KILL"
./target/release/dhub work --repos 25 --seed 5 --scale 1024 --workers 1 \
    --store-dir "$QUEUE_W1" > /dev/null
./target/release/dhub work --repos 25 --seed 5 --scale 1024 --workers 4 \
    --store-dir "$QUEUE_W4" > /dev/null
for q in summary dedup top-types layer-percentiles; do
    ./target/release/dhub query "$QUEUE_W1" "$q" > "$QUEUE_OUT.w1"
    ./target/release/dhub query "$QUEUE_W4" "$q" > "$QUEUE_OUT.w4"
    cmp -s "$QUEUE_OUT.w1" "$QUEUE_OUT.w4" \
        || { echo "FAIL: query '$q' diverged between 1- and 4-worker fleets" >&2; exit 1; }
done
echo "queue gate: 4 query outputs byte-identical across 1- and 4-worker fleets"
# Budget 40 lands the kill mid-layer-ingest: pages + the 25 image jobs
# commit first (under 30 together), so at least a dozen layer commits —
# and so a partially populated store for the resume check — are
# guaranteed before the fleet dies, whatever order workers claim in.
./target/release/dhub work --repos 25 --seed 5 --scale 1024 --workers 4 \
    --max-commits 40 --store-dir "$QUEUE_KILL" > "$QUEUE_OUT.kill"
grep -q "fleet killed after" "$QUEUE_OUT.kill" \
    || { echo "FAIL: --max-commits did not kill the fleet" >&2; exit 1; }
./target/release/dhub query "$QUEUE_KILL" dedup > "$QUEUE_OUT.mid"
grep -q "replaying" "$QUEUE_OUT.mid" \
    || { echo "FAIL: mid-ingest query did not fall back to recipe replay" >&2; exit 1; }
./target/release/dhub work --repos 25 --seed 5 --scale 1024 --workers 4 \
    --store-dir "$QUEUE_KILL" > "$QUEUE_OUT.resume"
grep -q "resuming store with" "$QUEUE_OUT.resume" \
    || { echo "FAIL: rerun over the killed store did not resume" >&2; exit 1; }
for q in summary dedup top-types layer-percentiles; do
    ./target/release/dhub query "$QUEUE_W1" "$q" > "$QUEUE_OUT.w1"
    ./target/release/dhub query "$QUEUE_KILL" "$q" > "$QUEUE_OUT.res"
    cmp -s "$QUEUE_OUT.w1" "$QUEUE_OUT.res" \
        || { echo "FAIL: query '$q' diverged after kill + resume" >&2; exit 1; }
done
echo "queue gate: killed fleet resumed to byte-identical query answers"
rm -rf "$QUEUE_W1" "$QUEUE_W4" "$QUEUE_KILL" "$QUEUE_OUT" \
    "$QUEUE_OUT.w1" "$QUEUE_OUT.w4" "$QUEUE_OUT.kill" "$QUEUE_OUT.mid" \
    "$QUEUE_OUT.resume" "$QUEUE_OUT.res"

# The obs bench must at least run (the full download comparison is the
# recorded BENCH_obs.json; here we smoke the cheap primitives only).
echo "==> obs bench smoke"
cargo bench --offline -p dhub-bench --bench obs -- \
    bench_span_enter_exit bench_snapshot bench_render > /dev/null

# Mirror bench smoke: the cheap microbenches only (the zipf mirror/direct
# comparison over real sockets is the recorded BENCH_mirror.json). The
# harness prints one `name,median_ns,samples,threads` CSV line per bench;
# check the lines actually appear.
echo "==> mirror bench smoke"
MIRROR_CSV=$(cargo bench --offline -p dhub-bench --bench mirror -- \
    bench_ring_route bench_cache_hot_hit)
echo "$MIRROR_CSV" | grep -q "^bench_ring_route_1k," \
    || { echo "FAIL: mirror bench CSV missing bench_ring_route_1k" >&2; exit 1; }
echo "$MIRROR_CSV" | grep -q "^bench_cache_hot_hit," \
    || { echo "FAIL: mirror bench CSV missing bench_cache_hot_hit" >&2; exit 1; }

# Analyze bench smoke: the hash kernels only (the fused-vs-reference
# pipeline comparison is the recorded BENCH_analyze.json). Check the CSV
# schema `name,median_ns,samples,threads` actually appears.
echo "==> analyze bench smoke"
ANALYZE_CSV=$(cargo bench --offline -p dhub-bench --bench analyze -- \
    bench_sha256_1mib bench_crc32_1mib)
echo "$ANALYZE_CSV" | grep -Eq "^bench_sha256_1mib,[0-9]+,[0-9]+,[0-9]+$" \
    || { echo "FAIL: analyze bench CSV missing bench_sha256_1mib" >&2; exit 1; }
echo "$ANALYZE_CSV" | grep -Eq "^bench_crc32_1mib,[0-9]+,[0-9]+,[0-9]+$" \
    || { echo "FAIL: analyze bench CSV missing bench_crc32_1mib" >&2; exit 1; }

# Persist bench smoke: the warm table queries only (the fsync-bound ingest
# and cold-reopen figures are the recorded BENCH_persist.json). Check the
# CSV schema `name,median_ns,samples,threads` actually appears.
echo "==> persist bench smoke"
PERSIST_CSV=$(cargo bench --offline -p dhub-bench --bench persist -- \
    bench_table_save_100k_rows bench_table_load_100k_rows \
    bench_scan_pushdown_streq_100k bench_scan_pushdown_range_100k)
echo "$PERSIST_CSV" | grep -Eq "^bench_table_load_100k_rows,[0-9]+,[0-9]+,[0-9]+$" \
    || { echo "FAIL: persist bench CSV missing bench_table_load_100k_rows" >&2; exit 1; }
echo "$PERSIST_CSV" | grep -Eq "^bench_scan_pushdown_streq_100k,[0-9]+,[0-9]+,[0-9]+$" \
    || { echo "FAIL: persist bench CSV missing bench_scan_pushdown_streq_100k" >&2; exit 1; }

# Queue bench smoke: the in-memory lease-machine micro only (the full
# fleet scaling/overhead comparison is the recorded BENCH_queue.json).
echo "==> queue bench smoke"
QUEUE_CSV=$(cargo bench --offline -p dhub-bench --bench queue -- \
    bench_lease_claim_complete_1k)
echo "$QUEUE_CSV" | grep -Eq "^bench_lease_claim_complete_1k,[0-9]+,[0-9]+,[0-9]+$" \
    || { echo "FAIL: queue bench CSV missing bench_lease_claim_complete_1k" >&2; exit 1; }

echo "==> dependency audit"
# No references to the removed external crates anywhere in crate sources.
if grep -rn "crossbeam\|parking_lot" crates/*/src; then
    echo "FAIL: external concurrency crate reference in crate sources" >&2
    exit 1
fi
# Every dependency in every manifest must be a path dependency (declared
# directly or inherited from the [workspace.dependencies] table, whose
# entries are all `{ path = ... }`).
python3 - <<'EOF'
import glob
import re
import sys

root = open("Cargo.toml").read()
ws = re.search(r"\[workspace\.dependencies\](.*?)(\n\[|\Z)", root, re.S).group(1)
ws_deps = {}
for line in ws.splitlines():
    m = re.match(r"([A-Za-z0-9_-]+)\s*=\s*(.*)", line.strip())
    if m:
        ws_deps[m.group(1)] = m.group(2)
bad = []
for name, spec in ws_deps.items():
    if "path" not in spec:
        bad.append(f"Cargo.toml: workspace dep `{name}` is not a path dependency: {spec}")

section_re = re.compile(r"^\[(.+)\]\s*$")
for manifest in sorted(glob.glob("crates/*/Cargo.toml")):
    section = ""
    for line in open(manifest):
        m = section_re.match(line.strip())
        if m:
            section = m.group(1)
            continue
        if not (section.endswith("dependencies")):
            continue
        m = re.match(r"([A-Za-z0-9_-]+)\s*(?:\.workspace)?\s*=\s*(.*)", line.strip())
        if not m:
            continue
        name, spec = m.groups()
        if "workspace" in line and name in ws_deps:
            continue  # inherited; audited above
        if "path" not in spec:
            bad.append(f"{manifest}: `{name}` is not a path dependency: {spec}")
if bad:
    print("FAIL: non-path dependencies found:", file=sys.stderr)
    for b in bad:
        print("  " + b, file=sys.stderr)
    sys.exit(1)
print("dependency audit: all manifests resolve from path dependencies only")
EOF

echo "==> ci.sh: all gates passed"
