#!/usr/bin/env python3
"""Regenerates the measured-anchors section of EXPERIMENTS.md from a
report run:

    cargo run --release -p dhub-study --bin report -- 400 20170530 128 > report_output.txt
    python3 scripts/update_experiments.py
"""
import re
import pathlib

root = pathlib.Path(__file__).resolve().parent.parent
report = (root / "report_output.txt").read_text()

rows = []
current = None
for line in report.splitlines():
    m = re.match(r"== (.+?) — (.+) ==", line)
    if m:
        current = m.group(1)
        continue
    m = re.match(
        r"\s+(.+?)\s+paper\s+([0-9.]+)\s+measured\s+([0-9.]+)\s+ratio\s+([0-9.]+|inf)", line
    )
    if m and current:
        rows.append((current, m.group(1).strip(), m.group(2), m.group(3), m.group(4)))

section = ["## Measured anchors (reference run)", ""]
header = (root / "report_output.txt").read_text().splitlines()[0]
section.append(f"Generated from `{header.lstrip('# ')}` — regenerate with the commands above.")
section.append("")
section.append("| Artifact | Anchor | Paper | Measured | Ratio |")
section.append("|---|---|---:|---:|---:|")
for artifact, name, paper, measured, ratio in rows:
    section.append(f"| {artifact} | {name} | {paper} | {measured} | {ratio} |")
section.append("")

exp_path = root / "EXPERIMENTS.md"
text = exp_path.read_text()
marker = "## Measured anchors (reference run)"
if marker in text:
    text = text[: text.index(marker)].rstrip() + "\n\n"
text += "\n".join(section) + "\n"
exp_path.write_text(text)
print(f"wrote {len(rows)} anchors to EXPERIMENTS.md")
